// Package aodv implements the Ad hoc On-demand Distance Vector routing
// protocol subset the paper's black-hole case study (§5.1) exercises:
// RREQ flooding with destination sequence numbers, destination-generated
// RREPs unicast along the reverse path, route expiry, RERR on broken
// links, plus the black-hole adversary and the inner-circle RREP defense
// of Fig. 6.
//
// Deviations from RFC 3561, chosen to match the paper's presentation:
// destination-only RREPs (no intermediate-node replies — Fig. 6 shows the
// destination replying and forwarders propagating), no expanding-ring
// search, and no HELLO messages (the Secure Topology Service provides
// neighbourhood liveness).
package aodv

import (
	"encoding/binary"
	"fmt"

	"innercircle/internal/link"
)

// RREQ is a route request, flooded toward the destination.
type RREQ struct {
	Orig     link.NodeID
	OrigSeq  uint32
	Dst      link.NodeID
	DstSeq   uint32
	SeqKnown bool // whether DstSeq is meaningful
	ID       uint32
	HopCount int
}

// Size implements link.Message.
func (RREQ) Size() int { return 24 }

// RREP is a route reply, unicast hop by hop along the reverse path. In the
// inner-circle configuration every RREP hop is voted on before the next
// node accepts it.
type RREP struct {
	Orig     link.NodeID // requester the reply travels toward
	Dst      link.NodeID // route destination (the replier)
	DstSeq   uint32
	HopCount int
	// NextHop is the node designated to process this RREP next; it is
	// part of the voted value in the inner-circle defense (Fig. 6).
	NextHop link.NodeID
}

// Size implements link.Message.
func (RREP) Size() int { return 20 }

// RERR reports an unreachable destination to upstream nodes. SeqKnown is
// false when the reporter had no sequence information for the destination
// (it is then treated as applicable regardless of the receiver's entry).
type RERR struct {
	Dst      link.NodeID
	DstSeq   uint32
	SeqKnown bool
}

// Size implements link.Message.
func (RERR) Size() int { return 12 }

// Data is an application payload routed over AODV.
type Data struct {
	Src     link.NodeID
	Dst     link.NodeID
	Seq     uint64
	Payload any
	Bytes   int
	Hops    int
}

// Size implements link.Message.
func (d Data) Size() int { return d.Bytes }

// EncodeRREP serializes an RREP into the byte value that the inner-circle
// voting protocol signs; layout is fixed so every voter and remote
// recipient derives identical bytes.
func EncodeRREP(r RREP) []byte {
	buf := make([]byte, 40)
	binary.BigEndian.PutUint64(buf[0:], uint64(r.Orig))
	binary.BigEndian.PutUint64(buf[8:], uint64(r.Dst))
	binary.BigEndian.PutUint32(buf[16:], r.DstSeq)
	binary.BigEndian.PutUint32(buf[20:], uint32(r.HopCount))
	binary.BigEndian.PutUint64(buf[24:], uint64(r.NextHop))
	return buf
}

// DecodeRREP reverses EncodeRREP.
func DecodeRREP(b []byte) (RREP, error) {
	if len(b) != 40 {
		return RREP{}, fmt.Errorf("aodv: bad encoded RREP length %d", len(b))
	}
	return RREP{
		Orig:     link.NodeID(binary.BigEndian.Uint64(b[0:])),
		Dst:      link.NodeID(binary.BigEndian.Uint64(b[8:])),
		DstSeq:   binary.BigEndian.Uint32(b[16:]),
		HopCount: int(binary.BigEndian.Uint32(b[20:])),
		NextHop:  link.NodeID(binary.BigEndian.Uint64(b[24:])),
	}, nil
}
