package mobility

import (
	"math"
	"testing"

	"innercircle/internal/geo"
	"innercircle/internal/sim"
)

func TestStaticNeverMoves(t *testing.T) {
	s := Static(geo.Point{X: 3, Y: 4})
	for _, tm := range []sim.Time{0, 1, 100, 1e6} {
		if got := s.Pos(tm); got != (geo.Point{X: 3, Y: 4}) {
			t.Fatalf("Pos(%v) = %v, want (3,4)", tm, got)
		}
	}
}

func newTestWaypoint(seed int64, pause sim.Duration) *Waypoint {
	cfg := WaypointConfig{
		Region:   geo.Square(1000),
		MinSpeed: 10,
		MaxSpeed: 10,
		Pause:    pause,
	}
	return NewWaypoint(cfg, geo.Point{X: 500, Y: 500}, sim.NewRNG(seed))
}

func TestWaypointStaysInRegion(t *testing.T) {
	region := geo.Square(1000)
	for seed := int64(0); seed < 5; seed++ {
		w := newTestWaypoint(seed, 0)
		for tm := sim.Time(0); tm < 1000; tm += 0.5 {
			p := w.Pos(tm)
			if !region.Contains(p) {
				t.Fatalf("seed %d: Pos(%v) = %v outside region", seed, tm, p)
			}
		}
	}
}

func TestWaypointSpeedBound(t *testing.T) {
	w := newTestWaypoint(1, 0)
	const dt = 0.1
	prev := w.Pos(0)
	for tm := sim.Time(dt); tm < 500; tm += dt {
		p := w.Pos(tm)
		d := p.Dist(prev)
		if d > 10*dt+1e-6 {
			t.Fatalf("node moved %v m in %v s (> max speed 10 m/s)", d, dt)
		}
		prev = p
	}
}

func TestWaypointActuallyMoves(t *testing.T) {
	w := newTestWaypoint(2, 0)
	start := w.Pos(0)
	moved := false
	for tm := sim.Time(1); tm < 100; tm++ {
		if w.Pos(tm).Dist(start) > 1 {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("waypoint node did not move in 100 s at 10 m/s")
	}
}

func TestWaypointDeterministic(t *testing.T) {
	a := newTestWaypoint(7, 0)
	b := newTestWaypoint(7, 0)
	for tm := sim.Time(0); tm < 200; tm += 1.5 {
		if a.Pos(tm) != b.Pos(tm) {
			t.Fatalf("same-seed trajectories diverged at %v", tm)
		}
	}
}

func TestWaypointPause(t *testing.T) {
	// With a long pause, after arriving the node must hold position.
	cfg := WaypointConfig{Region: geo.Square(100), MinSpeed: 50, MaxSpeed: 50, Pause: 1000}
	w := NewWaypoint(cfg, geo.Point{X: 50, Y: 50}, sim.NewRNG(3))
	// Max leg length is the diagonal ~141 m -> at most ~2.9 s travel.
	arrived := w.Pos(5)
	for tm := sim.Time(5); tm < 100; tm += 5 {
		if got := w.Pos(tm); got != arrived {
			t.Fatalf("node moved during pause: %v at %v vs %v", got, tm, arrived)
		}
	}
}

func TestUniformPlacementInRegion(t *testing.T) {
	region := geo.Rect{MinX: 10, MinY: 20, MaxX: 110, MaxY: 220}
	pts := UniformPlacement(region, 500, sim.NewRNG(4))
	if len(pts) != 500 {
		t.Fatalf("got %d points, want 500", len(pts))
	}
	for _, p := range pts {
		if !region.Contains(p) {
			t.Fatalf("point %v outside region", p)
		}
	}
}

func TestGridPlacementCountAndBounds(t *testing.T) {
	region := geo.Square(200)
	for _, n := range []int{1, 7, 100, 101} {
		pts := GridPlacement(region, n, 5, sim.NewRNG(5))
		if len(pts) != n {
			t.Fatalf("GridPlacement(%d) returned %d points", n, len(pts))
		}
		for _, p := range pts {
			if !region.Contains(p) {
				t.Fatalf("grid point %v outside region", p)
			}
		}
	}
	if got := GridPlacement(region, 0, 0, sim.NewRNG(1)); got != nil {
		t.Fatalf("GridPlacement(0) = %v, want nil", got)
	}
}

func TestGridPlacementRoughlyEven(t *testing.T) {
	// 100 nodes on 200x200 should have nearest-neighbour spacing near 20 m.
	pts := GridPlacement(geo.Square(200), 100, 2, sim.NewRNG(6))
	var minNN, maxNN float64 = math.Inf(1), 0
	for i, p := range pts {
		nn := math.Inf(1)
		for j, q := range pts {
			if i == j {
				continue
			}
			if d := p.Dist(q); d < nn {
				nn = d
			}
		}
		minNN = math.Min(minNN, nn)
		maxNN = math.Max(maxNN, nn)
	}
	if minNN < 10 || maxNN > 30 {
		t.Fatalf("nearest-neighbour spacing [%v, %v], want within [10, 30]", minNN, maxNN)
	}
}

// TestWaypointNonDecreasingTimeContract exercises the documented Model
// contract — Pos may be called with non-decreasing (including repeated)
// times — across many leg and pause boundaries, and asserts the two
// invariants callers rely on: positions stay inside the region, and the
// distance covered between samples never exceeds MaxSpeed (paused nodes
// hold still; travelling legs keep per-leg speed within
// [MinSpeed, MaxSpeed]).
func TestWaypointNonDecreasingTimeContract(t *testing.T) {
	region := geo.Square(300)
	const minSpeed, maxSpeed = 5.0, 15.0
	for seed := int64(0); seed < 4; seed++ {
		cfg := WaypointConfig{
			Region:   region,
			MinSpeed: minSpeed,
			MaxSpeed: maxSpeed,
			Pause:    1.5,
		}
		w := NewWaypoint(cfg, geo.Point{X: 150, Y: 150}, sim.NewRNG(seed))
		rng := sim.NewRNG(seed + 100)
		// Legs are at most ~85 s (diagonal / MinSpeed); 2000 samples with a
		// mean step of 0.5 s cross many leg and pause boundaries.
		now := sim.Time(0)
		prevT := now
		prev := w.Pos(now)
		for i := 0; i < 2000; i++ {
			// Mix of repeats (equal times) and forward steps.
			if i%5 == 0 {
				if got := w.Pos(now); got != prev {
					t.Fatalf("seed %d: Pos(%v) repeated call moved: %v -> %v", seed, now, prev, got)
				}
				continue
			}
			now += sim.Duration(rng.Uniform(0, 1))
			p := w.Pos(now)
			if !region.Contains(p) {
				t.Fatalf("seed %d: Pos(%v) = %v outside region", seed, now, p)
			}
			dt := float64(now - prevT)
			if d := p.Dist(prev); d > maxSpeed*dt+1e-9 {
				t.Fatalf("seed %d: moved %v m in %v s (> MaxSpeed %v m/s)", seed, d, dt, maxSpeed)
			}
			// The current leg's drawn speed must respect the config bounds.
			if w.speed < minSpeed || w.speed > maxSpeed {
				t.Fatalf("seed %d: leg speed %v outside [%v, %v]", seed, w.speed, minSpeed, maxSpeed)
			}
			prev, prevT = p, now
		}
		if now < 500 {
			t.Fatalf("seed %d: sampled only %v s; expected to cross several legs", seed, now)
		}
	}
}
