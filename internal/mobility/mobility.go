// Package mobility implements node placement and movement models. The
// paper's ad hoc experiment (Fig. 7) uses the random waypoint model with
// 10 m/s speed and zero pause time; the sensor experiment (Fig. 8) uses
// static nodes.
package mobility

import (
	"innercircle/internal/geo"
	"innercircle/internal/sim"
)

// Model yields a node's position at any (non-decreasing) simulation time.
// Implementations may assume Pos is called with non-decreasing times, which
// lets movement models advance incrementally.
type Model interface {
	Pos(t sim.Time) geo.Point
}

// Static is a Model that never moves.
type Static geo.Point

// Pos implements Model.
func (s Static) Pos(sim.Time) geo.Point { return geo.Point(s) }

var _ Model = Static{}

// Waypoint implements the random waypoint mobility model: a node repeatedly
// picks a uniform destination in the region, travels there in a straight
// line at a uniform speed from [MinSpeed, MaxSpeed], pauses for Pause, and
// repeats.
type Waypoint struct {
	region   geo.Rect
	minSpeed float64
	maxSpeed float64
	pause    sim.Duration
	rng      *sim.RNG

	// current leg
	legStart sim.Time
	from     geo.Point
	to       geo.Point
	speed    float64
	legEnd   sim.Time // arrival at to; pause runs [legEnd, legEnd+pause]
}

var _ Model = (*Waypoint)(nil)

// WaypointConfig parameterizes NewWaypoint.
type WaypointConfig struct {
	Region   geo.Rect
	MinSpeed float64 // m/s; must be > 0
	MaxSpeed float64 // m/s; >= MinSpeed
	Pause    sim.Duration
}

// NewWaypoint returns a waypoint model starting at start, drawing
// destinations and speeds from rng.
func NewWaypoint(cfg WaypointConfig, start geo.Point, rng *sim.RNG) *Waypoint {
	w := &Waypoint{
		region:   cfg.Region,
		minSpeed: cfg.MinSpeed,
		maxSpeed: cfg.MaxSpeed,
		pause:    cfg.Pause,
		rng:      rng,
		from:     cfg.Region.Clamp(start),
		to:       cfg.Region.Clamp(start),
	}
	w.nextLeg(0)
	return w
}

// nextLeg starts a new travel leg at time t from the current destination.
func (w *Waypoint) nextLeg(t sim.Time) {
	w.legStart = t
	w.from = w.to
	w.to = geo.Point{
		X: w.rng.Uniform(w.region.MinX, w.region.MaxX),
		Y: w.rng.Uniform(w.region.MinY, w.region.MaxY),
	}
	w.speed = w.rng.Uniform(w.minSpeed, w.maxSpeed)
	if w.speed <= 0 {
		w.speed = w.minSpeed
	}
	d := w.from.Dist(w.to)
	if w.speed > 0 {
		w.legEnd = w.legStart + sim.Duration(d/w.speed)
	} else {
		w.legEnd = sim.Never
	}
}

// Pos implements Model.
func (w *Waypoint) Pos(t sim.Time) geo.Point {
	// Advance legs until t falls inside the current leg or its pause.
	for t >= w.legEnd+w.pause && w.legEnd != sim.Never {
		w.nextLeg(w.legEnd + w.pause)
	}
	if t >= w.legEnd {
		return w.to // pausing at destination
	}
	if t <= w.legStart {
		return w.from
	}
	frac := float64(t-w.legStart) / float64(w.legEnd-w.legStart)
	return w.from.Add(w.to.Sub(w.from).Scale(frac))
}

// UniformPlacement returns n points drawn uniformly from region.
func UniformPlacement(region geo.Rect, n int, rng *sim.RNG) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{
			X: rng.Uniform(region.MinX, region.MaxX),
			Y: rng.Uniform(region.MinY, region.MaxY),
		}
	}
	return pts
}

// GridPlacement returns n points on a near-square grid covering region,
// each perturbed by uniform jitter in [-jitter, jitter] on both axes and
// clamped to the region. The sensor experiment uses this to model a dense,
// roughly regular field deployment.
func GridPlacement(region geo.Rect, n int, jitter float64, rng *sim.RNG) []geo.Point {
	if n <= 0 {
		return nil
	}
	cols := 1
	for cols*cols < n {
		cols++
	}
	rows := (n + cols - 1) / cols
	dx := region.Width() / float64(cols)
	dy := region.Height() / float64(rows)
	pts := make([]geo.Point, 0, n)
	for i := 0; i < n; i++ {
		r, c := i/cols, i%cols
		p := geo.Point{
			X: region.MinX + (float64(c)+0.5)*dx + rng.Uniform(-jitter, jitter),
			Y: region.MinY + (float64(r)+0.5)*dy + rng.Uniform(-jitter, jitter),
		}
		pts = append(pts, region.Clamp(p))
	}
	return pts
}
