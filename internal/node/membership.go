package node

import (
	"fmt"
	"sort"

	"innercircle/internal/crypto/thresh"
	"innercircle/internal/vote"
)

// MembershipStats counts membership-lifecycle activity.
type MembershipStats struct {
	Epoch         uint64 // membership epochs completed (reshares + refreshes)
	Reshares      uint64
	Refreshes     uint64
	Departs       uint64
	Crashes       uint64
	Joins         uint64
	RoundsAborted uint64 // in-flight vote rounds drained by transitions
	LevelsRevoked uint64 // level keys left unshared for lack of members
}

// Membership drives the epoch-based inner-circle lifecycle on top of a
// built network: nodes leave, crash, and rejoin mid-run, and the level
// keys follow the surviving set through quorum reshares and proactive
// refreshes. Each transition is a drain → swap → re-announce sequence:
// in-flight vote rounds are aborted (a round straddling an epoch boundary
// cannot complete — its partials would mix epochs), signer sets are
// swapped atomically in virtual time, and the active members immediately
// re-beacon so the topology view catches up without waiting out a beacon
// period.
//
// Membership itself is an orchestration convenience standing in for the
// paper's distributed join/leave protocol: it runs as a zero-duration
// oracle at the instant a transition fires, while the costs the paper
// cares about (aborted rounds, re-announce traffic, reshare computation)
// all land in the simulation.
type Membership struct {
	net       *Network
	resharer  thresh.Resharer
	refresher thresh.Refresher
	active    []bool
	Stats     MembershipStats
}

// Membership creates the lifecycle manager. Requires an IC network on a
// single kernel: transitions mutate every node's signer set at one
// instant, which a sharded deployment cannot order.
func (net *Network) Membership() (*Membership, error) {
	if net.Ring == nil {
		return nil, fmt.Errorf("node: membership requires the inner circle (IC mode)")
	}
	if net.Set != nil {
		return nil, fmt.Errorf("node: membership transitions require a single-kernel deployment")
	}
	m := &Membership{net: net, active: make([]bool, len(net.Nodes))}
	for i := range m.active {
		m.active[i] = true
	}
	m.resharer, _ = net.Dealer.(thresh.Resharer)
	m.refresher, _ = net.Dealer.(thresh.Refresher)
	return m, nil
}

// Active reports whether node i is currently a circle member.
func (m *Membership) Active(i int) bool {
	return i >= 0 && i < len(m.active) && m.active[i]
}

// ActiveCount returns the current circle size.
func (m *Membership) ActiveCount() int {
	n := 0
	for _, a := range m.active {
		if a {
			n++
		}
	}
	return n
}

// activeIDs returns the member indices in ascending order.
func (m *Membership) activeIDs() []int {
	ids := make([]int, 0, len(m.active))
	for i, a := range m.active {
		if a {
			ids = append(ids, i)
		}
	}
	return ids
}

// Leave departs node i gracefully: it stops beaconing (neighbours age it
// out of their topology views), drains its open rounds, and surrenders
// its signers so it can no longer co-sign. Its old shares stay
// mathematically valid until the next Reshare rotates the polynomials —
// the reshare policy decides how quickly departed shares die.
func (m *Membership) Leave(i int) {
	if m.depart(i, "membership: left the circle") {
		m.Stats.Departs++
	}
}

// Crash fails node i abruptly. At this layer a crash and a graceful leave
// look the same — the node stops participating; radio-level crash
// semantics (dropped frames mid-flight) belong to the fault injector.
func (m *Membership) Crash(i int) {
	if m.depart(i, "membership: node crashed") {
		m.Stats.Crashes++
	}
}

func (m *Membership) depart(i int, reason string) bool {
	if !m.Active(i) {
		return false
	}
	m.active[i] = false
	nd := m.net.Nodes[i]
	if nd.STS != nil {
		nd.STS.Stop()
	}
	if nd.Vote != nil {
		m.Stats.RoundsAborted += uint64(nd.Vote.AbortInFlight(reason))
		nd.Vote.SetKeys(nil)
	}
	m.net.NodeKeys[i] = vote.NodeKeys{}
	return true
}

// Join admits node i (back) into the circle: STS restarts with an
// immediate beacon, so neighbours hear it right away. The node only
// regains signing capability at the next Reshare — that is the act by
// which the quorum actually admits a member to the key.
func (m *Membership) Join(i int) {
	if i < 0 || i >= len(m.active) || m.active[i] {
		return
	}
	m.active[i] = true
	if nd := m.net.Nodes[i]; nd.STS != nil {
		nd.STS.Start()
	}
	m.Stats.Joins++
}

// Reshare moves every level key to the current active set: member j in
// ascending-index order receives share index j+1 of each rebuilt key. The
// public keys are unchanged, so previously agreed messages stay
// verifiable, but the epoch bump invalidates memoized verdicts and (under
// rotated share keys) stale partials. Levels the shrunken circle can no
// longer reach (L+1 > members) are revoked: nobody receives a signer,
// though the key object remains for verifying old traffic; a later
// Reshare with enough members re-arms them.
func (m *Membership) Reshare() error {
	if m.resharer == nil {
		return fmt.Errorf("node: dealer %T cannot reshare", m.net.Dealer)
	}
	act := m.activeIDs()
	if len(act) < 2 {
		return fmt.Errorf("node: cannot reshare a circle of %d members", len(act))
	}
	m.drain("membership epoch transition: reshare")
	fresh := make([]vote.NodeKeys, len(m.net.Nodes))
	for i := range fresh {
		fresh[i] = vote.NodeKeys{}
	}
	for _, level := range m.levels() {
		if level+1 > len(act) {
			m.Stats.LevelsRevoked++
			continue
		}
		signers, err := m.resharer.Reshare(m.net.Ring[level], level, len(act))
		if err != nil {
			return fmt.Errorf("node: reshare level %d: %w", level, err)
		}
		for j, s := range signers {
			fresh[act[j]][level] = s
		}
	}
	m.install(fresh)
	m.Stats.Reshares++
	m.Stats.Epoch++
	return nil
}

// Refresh proactively re-randomizes every level key among its current
// holders (share rotation without membership change): public keys and
// share indices are unchanged, old partials and memos die with the epoch.
func (m *Membership) Refresh() error {
	if m.refresher == nil {
		return fmt.Errorf("node: dealer %T cannot refresh", m.net.Dealer)
	}
	m.drain("membership epoch transition: refresh")
	fresh := make([]vote.NodeKeys, len(m.net.Nodes))
	for i := range fresh {
		fresh[i] = vote.NodeKeys{}
		for level, s := range m.net.NodeKeys[i] {
			fresh[i][level] = s
		}
	}
	refreshed := false
	for _, level := range m.levels() {
		// Holders in node order — the alignment Refresh expects.
		var holders []int
		var old []thresh.Signer
		for i := range m.net.Nodes {
			if s := m.net.NodeKeys[i][level]; s != nil {
				holders = append(holders, i)
				old = append(old, s)
			}
		}
		if len(holders) == 0 {
			continue // revoked level: nothing to rotate
		}
		rotated, err := m.refresher.Refresh(m.net.Ring[level], old)
		if err != nil {
			return fmt.Errorf("node: refresh level %d: %w", level, err)
		}
		for j, i := range holders {
			fresh[i][level] = rotated[j]
		}
		refreshed = true
	}
	if !refreshed {
		return fmt.Errorf("node: no level keys held by any node to refresh")
	}
	m.install(fresh)
	m.Stats.Refreshes++
	m.Stats.Epoch++
	return nil
}

// drain aborts every node's in-flight rounds before a key swap.
func (m *Membership) drain(reason string) {
	for _, nd := range m.net.Nodes {
		if nd.Vote != nil {
			m.Stats.RoundsAborted += uint64(nd.Vote.AbortInFlight(reason))
		}
	}
}

// install swaps the per-node signer sets in and re-announces the active
// members over STS.
func (m *Membership) install(fresh []vote.NodeKeys) {
	for i, nd := range m.net.Nodes {
		m.net.NodeKeys[i] = fresh[i]
		if nd.Vote != nil {
			nd.Vote.SetKeys(fresh[i])
		}
		if m.active[i] && nd.STS != nil {
			nd.STS.Announce()
		}
	}
}

// levels returns the ring's dependability levels in ascending order.
func (m *Membership) levels() []int {
	out := make([]int, 0, len(m.net.Ring))
	for level := range m.net.Ring {
		out = append(out, level)
	}
	sort.Ints(out)
	return out
}
