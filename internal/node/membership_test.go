package node

import (
	"testing"

	"innercircle/internal/crypto/thresh"
	"innercircle/internal/geo"
	"innercircle/internal/link"
	"innercircle/internal/mobility"
	"innercircle/internal/sim"
	"innercircle/internal/sts"
	"innercircle/internal/vote"
)

// icConfig builds an IC deployment config: n nodes in mutual radio range,
// deterministic voting at level l.
func icConfig(n, l int) Config {
	cfg := baseConfig(n)
	// One-hop clique: membership transitions assume the circle hears the
	// agreed broadcast directly.
	cfg.Mobility = func(i int, _ *sim.RNG) mobility.Model {
		return mobility.Static(geo.Point{X: float64(i) * 10})
	}
	cfg.IC = true
	cfg.MaxL = l + 1
	cfg.STS = sts.Config{Period: 0.9, Delta: 2, Authenticate: true, BeaconBaseBytes: 28}
	cfg.Vote = vote.Config{Mode: vote.Deterministic, L: l, RoundTimeout: 0.5, Retries: 1}
	return cfg
}

// buildIC assembles the network with per-node agreed-message capture and
// warms up the topology view.
func buildIC(t *testing.T, cfg Config) (*Network, []vote.AgreedMsg) {
	t.Helper()
	agreed := make([]vote.AgreedMsg, cfg.N)
	cfg.Callbacks = func(nd *Node) vote.Callbacks {
		i := nd.Index
		return vote.Callbacks{
			Check:    func(link.NodeID, []byte) bool { return true },
			OnAgreed: func(a vote.AgreedMsg) { agreed[i] = a },
		}
	}
	net, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.StartSTS()
	if err := net.Run(net.K.Now() + 4); err != nil {
		t.Fatal(err)
	}
	return net, agreed
}

// agreeOn proposes value from node `from` and requires every node in
// `expect` to see an agreed message for it.
func agreeOn(t *testing.T, net *Network, agreed []vote.AgreedMsg, from int, value []byte, expect []int) {
	t.Helper()
	for i := range agreed {
		agreed[i] = vote.AgreedMsg{}
	}
	if err := net.Nodes[from].Vote.Propose(value); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(net.K.Now() + 3); err != nil {
		t.Fatal(err)
	}
	for _, i := range expect {
		if agreed[i].Value == nil {
			t.Fatalf("node %d saw no agreement for %q", i, value)
		}
	}
}

func TestMembershipRequiresICAndSingleKernel(t *testing.T) {
	net, err := Build(baseConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Membership(); err == nil {
		t.Fatal("membership manager created without IC")
	}
}

func TestMembershipLeaveReshareJoin(t *testing.T) {
	net, agreed := buildIC(t, icConfig(5, 2))
	m, err := net.Membership()
	if err != nil {
		t.Fatal(err)
	}
	agreeOn(t, net, agreed, 0, []byte("epoch-0"), []int{0, 1, 2, 3})

	// Node 4 departs; its signers are revoked immediately.
	m.Leave(4)
	if m.Active(4) || m.ActiveCount() != 4 {
		t.Fatalf("after Leave: active=%v count=%d", m.Active(4), m.ActiveCount())
	}
	if len(net.NodeKeys[4]) != 0 {
		t.Fatal("departed node kept signers")
	}
	if err := m.Reshare(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Epoch != 1 || m.Stats.Reshares != 1 {
		t.Fatalf("stats after reshare: %+v", m.Stats)
	}
	// The 4 survivors hold share indices 1..4 of the (unchanged) ring.
	for i := 0; i < 4; i++ {
		if net.NodeKeys[i][2] == nil {
			t.Fatalf("survivor %d has no level-2 signer after reshare", i)
		}
	}
	agreeOn(t, net, agreed, 0, []byte("epoch-1"), []int{0, 1, 2, 3})

	// Node 4 rejoins: heard again immediately, signing only after the
	// next reshare admits it to the keys.
	m.Join(4)
	if !m.Active(4) || m.Stats.Joins != 1 {
		t.Fatalf("after Join: active=%v stats=%+v", m.Active(4), m.Stats)
	}
	if len(net.NodeKeys[4]) != 0 {
		t.Fatal("joined node has signers before a reshare")
	}
	if err := m.Reshare(); err != nil {
		t.Fatal(err)
	}
	if net.NodeKeys[4][2] == nil {
		t.Fatal("rejoined node has no signer after reshare")
	}
	agreeOn(t, net, agreed, 4, []byte("epoch-2"), []int{0, 1, 2, 3, 4})
}

func TestMembershipCrashAbortsRounds(t *testing.T) {
	cfg := icConfig(4, 2)
	// Nobody acks, so a proposed round stays open until crash drains it.
	cfg.Callbacks = func(*Node) vote.Callbacks {
		return vote.Callbacks{Check: func(link.NodeID, []byte) bool { return false }}
	}
	net, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.StartSTS()
	if err := net.Run(4); err != nil {
		t.Fatal(err)
	}
	m, err := net.Membership()
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Nodes[1].Vote.Propose([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	m.Crash(1)
	if m.Stats.Crashes != 1 {
		t.Fatalf("stats = %+v", m.Stats)
	}
	if m.Stats.RoundsAborted != 1 {
		t.Fatalf("crash drained %d rounds, want 1", m.Stats.RoundsAborted)
	}
}

func TestMembershipRevokesUnreachableLevels(t *testing.T) {
	net, agreed := buildIC(t, icConfig(4, 1)) // MaxL=2: levels 1 and 2 dealt
	m, err := net.Membership()
	if err != nil {
		t.Fatal(err)
	}
	m.Leave(3)
	m.Leave(2)
	if err := m.Reshare(); err != nil {
		t.Fatal(err)
	}
	// Two members cannot reach level 2 (needs 3 co-signers): revoked.
	if m.Stats.LevelsRevoked != 1 {
		t.Fatalf("LevelsRevoked = %d, want 1", m.Stats.LevelsRevoked)
	}
	for i := 0; i < 2; i++ {
		if net.NodeKeys[i][1] == nil {
			t.Fatalf("node %d lost its level-1 signer", i)
		}
		if net.NodeKeys[i][2] != nil {
			t.Fatalf("node %d kept a signer for the revoked level 2", i)
		}
	}
	agreeOn(t, net, agreed, 0, []byte("two-left"), []int{0, 1})

	// A third member coming back re-arms the level at the next reshare.
	m.Join(2)
	if err := m.Reshare(); err != nil {
		t.Fatal(err)
	}
	if net.NodeKeys[0][2] == nil {
		t.Fatal("level 2 not re-armed after the circle regrew")
	}
	// Too few members to reshare at all is refused.
	m.Leave(2)
	m.Leave(1)
	if err := m.Reshare(); err == nil {
		t.Fatal("reshared a circle of one")
	}
}

func TestMembershipRefreshRotatesShares(t *testing.T) {
	net, agreed := buildIC(t, icConfig(4, 2))
	m, err := net.Membership()
	if err != nil {
		t.Fatal(err)
	}
	agreeOn(t, net, agreed, 0, []byte("before"), []int{0, 1, 2, 3})
	old := agreed[1]
	if err := m.Refresh(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Refreshes != 1 || m.Stats.Epoch != 1 {
		t.Fatalf("stats = %+v", m.Stats)
	}
	// Under the sim scheme the rotated share keys invalidate the old
	// combined signature — and agreement still works on the new epoch.
	if err := net.Nodes[1].Vote.VerifyAgreed(old); err == nil {
		t.Fatal("pre-refresh signature verified after the refresh")
	}
	agreeOn(t, net, agreed, 0, []byte("after"), []int{0, 1, 2, 3})
}

func TestDKGBuildWiresBlameIntoSuspicion(t *testing.T) {
	cfg := icConfig(6, 2)
	cfg.DKG = true
	cfg.DKGFaults = map[int]thresh.DKGFault{
		3: thresh.DKGCheatStubborn,
		5: thresh.DKGSilent,
	}
	net, agreed := buildIC(t, cfg)
	if len(net.DKGBlamed) != 1 || net.DKGBlamed[0] != 3 {
		t.Fatalf("DKGBlamed = %v, want [3]", net.DKGBlamed)
	}
	if len(net.DKGSilent) != 1 || net.DKGSilent[0] != 5 {
		t.Fatalf("DKGSilent = %v, want [5]", net.DKGSilent)
	}
	for _, nd := range net.Nodes {
		if nd.Index == 3 {
			continue
		}
		if !nd.Susp.Suspected(link.NodeID(3)) {
			t.Fatalf("node %d does not suspect the blamed node", nd.Index)
		}
		if nd.Index != 5 && !nd.Susp.Suspected(link.NodeID(5)) {
			t.Fatalf("node %d does not suspect the silent node", nd.Index)
		}
	}
	// Excluded nodes hold no signers; the qualified majority agrees
	// without them.
	if len(net.NodeKeys[3]) != 0 || len(net.NodeKeys[5]) != 0 {
		t.Fatal("excluded nodes received signers")
	}
	agreeOn(t, net, agreed, 0, []byte("dkg-keyed"), []int{0, 1, 2, 4})
	// DKG-established keys support the full lifecycle.
	m, err := net.Membership()
	if err != nil {
		t.Fatal(err)
	}
	m.Leave(3)
	m.Leave(5)
	if err := m.Reshare(); err != nil {
		t.Fatal(err)
	}
	agreeOn(t, net, agreed, 0, []byte("dkg-reshared"), []int{0, 1, 2, 4})
}
