// Package node assembles the per-node component stack of the paper's
// architecture (Fig. 1): radio, MAC, single-hop link service, inner-circle
// interceptor, suspicions manager, secure topology service, and voting
// service — plus the shared network fabric (simulation kernel, radio
// channel, key material) that a simulated deployment needs.
package node

import (
	"fmt"
	"io"
	mrand "math/rand"
	"os"

	"innercircle/internal/crypto/nsl"
	"innercircle/internal/crypto/sigcache"
	"innercircle/internal/crypto/thresh"
	"innercircle/internal/energy"
	"innercircle/internal/geo"
	"innercircle/internal/icnet"
	"innercircle/internal/link"
	"innercircle/internal/mac"
	"innercircle/internal/mobility"
	"innercircle/internal/radio"
	"innercircle/internal/sim"
	"innercircle/internal/sts"
	"innercircle/internal/trace"
	"innercircle/internal/vote"
)

// Node is one assembled wireless node.
type Node struct {
	ID    link.NodeID
	Index int
	K     *sim.Kernel
	MAC   *mac.MAC
	Link  *link.Service
	Meter *energy.Meter
	Mob   mobility.Model
	RNG   *sim.RNG

	// Inner-circle components; nil when the network is built without IC.
	Susp      *icnet.SuspicionManager
	Intercept *icnet.Interceptor
	STS       *sts.Service
	Vote      *vote.Service

	// SignKP is the node's individual key pair (nil in SimAuth-only
	// networks without statistical voting).
	SignKP *nsl.KeyPair

	handlers []func(link.Env) bool
}

// Handle appends a message handler; handlers run in registration order
// after the STS and voting services, and the first to return true consumes
// the envelope.
func (n *Node) Handle(fn func(link.Env) bool) {
	n.handlers = append(n.handlers, fn)
}

// dispatch routes an inbound envelope through the component stack.
func (n *Node) dispatch(e link.Env) {
	if n.STS != nil && n.STS.HandleEnv(e) {
		return
	}
	if n.Vote != nil && n.Vote.HandleEnv(e) {
		return
	}
	for _, h := range n.handlers {
		if h(e) {
			return
		}
	}
}

// Network is a simulated deployment.
type Network struct {
	K       *sim.Kernel
	Channel *radio.Channel
	Nodes   []*Node
	Ring    vote.PublicRing
	Dir     nsl.DirectoryMap
	RNG     *sim.RNG
	// Dealer is the threshold-key authority the network was built with and
	// NodeKeys the per-node signer sets it produced (both nil/empty without
	// IC). Retained so membership transitions (Membership) can reshare and
	// refresh the ring after Build.
	Dealer   thresh.Dealer
	NodeKeys []vote.NodeKeys
	// DKGBlamed and DKGSilent record nodes excluded during dealerless
	// keygen (Config.DKG): blamed with proof of misbehaviour, or silent.
	// Build has already fed them to every node's suspicion manager.
	DKGBlamed []int
	DKGSilent []int
	// Set is the shard set driving a partitioned deployment (nil when the
	// network runs on a single kernel). K is then shard 0's kernel; every
	// node's K is its home shard's.
	Set *sim.ShardSet
	// Memo is the signature-verification memo shared by all voting services
	// on the same kernel (nil when IC is off or IC_CRYPTO_MEMO=off). Under
	// sharding each shard gets its own memo (Memos[i]; Memo aliases shard
	// 0's): the cache is unsynchronized, and since it only memoizes a pure
	// function, per-shard caches cannot change results.
	Memo  *sigcache.Cache
	Memos []*sigcache.Cache
}

// Config describes a deployment to build.
type Config struct {
	// N is the number of nodes.
	N int
	// Seed drives every random stream in the network.
	Seed int64
	// Radio, MAC and Energy configure the lower layers.
	Radio  radio.Params
	MAC    mac.Params
	Energy energy.Params
	// Mobility yields node i's movement model; required.
	Mobility func(i int, rng *sim.RNG) mobility.Model

	// IC installs the inner-circle components (interceptor, suspicions
	// manager, voting service). STS runs in both modes; with IC off it
	// runs unauthenticated (plain hellos), matching the paper's "No IC"
	// baselines.
	IC bool
	// STS configures the topology service. A zero Period disables STS
	// entirely.
	STS sts.Config
	// Vote configures the voting service (only used when IC is set).
	Vote vote.Config
	// MaxL bounds the dependability levels for which keys are dealt.
	MaxL int
	// Dealer provides threshold keys; nil selects thresh.SimDealer seeded
	// from Seed.
	Dealer thresh.Dealer
	// DKG establishes the level keys with the dealerless protocol
	// (thresh.KeyGenerator) instead of the trusted dealer's Deal: the nodes
	// run qualification rounds, and misbehaving participants (DKGFaults,
	// keyed by 0-based node index) are excluded — blamed nodes enter every
	// other node's permanent suspect list, silent ones the temporary list.
	DKG       bool
	DKGFaults map[int]thresh.DKGFault
	// Keys optionally supplies pre-generated per-node RSA key pairs
	// (benches cache them across runs — key material does not affect
	// traffic). Required length N when set.
	Keys []*nsl.KeyPair
	// KeyBits sets generated key size when Keys is nil and RSA material
	// is needed (STS handshake or statistical voting). Default 512.
	KeyBits int
	// SigWireBytes is the emulated signature size for SimAuth/SimDealer
	// (e.g. 128 for "1024-bit keys"). Default 128.
	SigWireBytes int
	// Callbacks builds each node's vote callbacks (IC mode); may be nil.
	Callbacks func(n *Node) vote.Callbacks
	// TempSuspicion is the temporary-suspicion duration. Default 120 s.
	TempSuspicion sim.Duration
	// Shards partitions the deployment across that many kernels run under
	// conservative-lookahead synchronization (sim.ShardSet). 0 or 1 builds
	// the plain single-kernel network. Sharding requires static mobility
	// for every node and no Tracer (the tracer's tap is a single ordered
	// stream; interleaving it across shards would serialize them).
	Shards int
	// ShardOf maps a node's static position to its home shard in
	// [0, Shards); required when Shards > 1. Cross-shard radio traffic is
	// only sound between adjacent shard indices, so the mapping must be a
	// stripe partition at least one radio range wide per stripe (see
	// scenario.StripePartition).
	ShardOf func(geo.Point) int
	// ShardBorder reports whether a position lies within one radio range
	// of a stripe boundary; required when Shards > 1.
	ShardBorder func(geo.Point) bool

	// Tracer, when non-nil, taps every node's link traffic.
	Tracer *trace.Tracer
	// Crypto models signing/verification latency and energy (zero value:
	// instantaneous and free).
	Crypto vote.CryptoProfile
}

// GenerateKeySet creates n RSA key pairs for reuse across Build calls.
func GenerateKeySet(n, bits int) ([]*nsl.KeyPair, error) {
	return generateKeySet(n, bits, nil)
}

// GenerateKeySetSeeded creates n RSA key pairs from a seeded deterministic
// stream, so repeated processes derive identical key material. Simulation
// use only: the moduli's exact bit lengths feed wire-size accounting
// (beacon signatures), so reproducible sweeps need reproducible keys.
func GenerateKeySetSeeded(n, bits int, seed int64) ([]*nsl.KeyPair, error) {
	return generateKeySet(n, bits, mrand.New(mrand.NewSource(seed)))
}

func generateKeySet(n, bits int, randSrc io.Reader) ([]*nsl.KeyPair, error) {
	if bits == 0 {
		bits = 512
	}
	keys := make([]*nsl.KeyPair, n)
	for i := range keys {
		kp, err := nsl.GenerateKeyPair(bits, randSrc)
		if err != nil {
			return nil, fmt.Errorf("node: generate key %d: %w", i, err)
		}
		keys[i] = kp
	}
	return keys, nil
}

// Build assembles the network. Nodes are created but protocol services are
// not started; call StartSTS (or start services individually) before Run.
func Build(cfg Config) (*Network, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("node: N must be >= 1")
	}
	if cfg.Mobility == nil {
		return nil, fmt.Errorf("node: mobility model constructor required")
	}
	if cfg.IC && cfg.STS.Period <= 0 {
		return nil, fmt.Errorf("node: IC mode requires a running STS (Period > 0)")
	}
	if cfg.TempSuspicion == 0 {
		cfg.TempSuspicion = 120
	}
	if cfg.SigWireBytes == 0 {
		cfg.SigWireBytes = 128
	}

	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	var set *sim.ShardSet
	var k *sim.Kernel
	var ch *radio.Channel
	if shards > 1 {
		if cfg.ShardOf == nil || cfg.ShardBorder == nil {
			return nil, fmt.Errorf("node: Shards=%d requires ShardOf and ShardBorder", shards)
		}
		if cfg.Tracer != nil {
			return nil, fmt.Errorf("node: tracing and sharding are mutually exclusive")
		}
		// The lookahead is the physical bound on how soon a transmission
		// can follow the event that decides to make it: every path to
		// radio.Send waits at least SIFS (ACK turnaround) or DIFS+backoff
		// (contention) first.
		lookahead := cfg.MAC.SIFS
		if cfg.MAC.DIFS < lookahead {
			lookahead = cfg.MAC.DIFS
		}
		if lookahead <= 0 {
			return nil, fmt.Errorf("node: sharding requires positive SIFS and DIFS (lookahead bound)")
		}
		set = sim.NewShardSet(shards, lookahead)
		k = set.Kernel(0)
		ch = radio.NewChannelSharded(set, cfg.Radio, func(p geo.Point) (int, bool) {
			return cfg.ShardOf(p), cfg.ShardBorder(p)
		})
		if os.Getenv("IC_SHARD_MSGLA") != "off" {
			// A cross-shard message is a frame registration posted at the
			// send instant; the receiving side's only event chain starts
			// when the frame's airtime elapses, and every MAC frame carries
			// at least the header overhead on the air. Any transmission the
			// message triggers therefore waits the frame airtime plus the
			// MAC turnaround — so the message lookahead, the bound null
			// messages propagate at, is the base lookahead plus the minimum
			// frame airtime. IC_SHARD_MSGLA=off pins the conservative base
			// bound for A/B attribution.
			set.SetMsgLookahead(lookahead + ch.TxDuration(cfg.MAC.HeaderBytes))
		}
	} else {
		k = sim.NewKernel()
		ch = radio.NewChannel(k, cfg.Radio)
	}
	rng := sim.NewRNG(cfg.Seed)
	if cfg.Tracer != nil {
		cfg.Tracer.SetClock(k.Now)
	}
	net := &Network{K: k, Channel: ch, RNG: rng, Set: set, Dir: nsl.DirectoryMap{}}

	needRSA := cfg.STS.Handshake || (cfg.IC && cfg.Vote.Mode == vote.Statistical)
	keys := cfg.Keys
	if needRSA && keys == nil {
		var err error
		keys, err = GenerateKeySet(cfg.N, cfg.KeyBits)
		if err != nil {
			return nil, err
		}
	}
	if keys != nil {
		if len(keys) != cfg.N {
			return nil, fmt.Errorf("node: got %d keys for %d nodes", len(keys), cfg.N)
		}
		for i, kp := range keys {
			net.Dir[int64(i)] = kp.Pub
		}
	}

	// Threshold key material (IC mode only).
	if cfg.IC {
		dealer := cfg.Dealer
		if dealer == nil {
			dealer = thresh.NewSimDealer([]byte(fmt.Sprintf("net-%d", cfg.Seed)), cfg.SigWireBytes)
		}
		maxL := cfg.MaxL
		if maxL == 0 {
			maxL = 10
		}
		if cfg.DKG {
			gen, ok := dealer.(thresh.KeyGenerator)
			if !ok {
				return nil, fmt.Errorf("node: dealer %T cannot run dealerless keygen", dealer)
			}
			ring, nk, blamed, silent, err := vote.DKGRing(gen, maxL, cfg.N, cfg.DKGFaults)
			if err != nil {
				return nil, fmt.Errorf("node: dealerless keygen: %w", err)
			}
			net.Ring = ring
			net.NodeKeys = nk
			net.DKGBlamed = blamed
			net.DKGSilent = silent
		} else {
			ring, nk, err := vote.DealRing(dealer, maxL, cfg.N)
			if err != nil {
				return nil, fmt.Errorf("node: deal threshold keys: %w", err)
			}
			net.Ring = ring
			net.NodeKeys = nk
		}
		net.Dealer = dealer
	}

	for i := 0; i < cfg.N; i++ {
		nodeRNG := rng.SplitN("node", i)
		mob := cfg.Mobility(i, nodeRNG.Split("mobility"))
		meter := energy.NewMeter(cfg.Energy)
		nk := k
		if set != nil {
			s, ok := mob.(mobility.Static)
			if !ok {
				return nil, fmt.Errorf("node %d: sharding requires static mobility, got %T", i, mob)
			}
			nk = set.Kernel(cfg.ShardOf(geo.Point(s)))
		}
		m := mac.New(nk, ch, mob, meter, nodeRNG.Split("mac"), cfg.MAC)
		if set != nil && m.Transceiver().Border() {
			m.MarkBorder()
		}
		l := link.NewService(m)
		if cfg.Tracer != nil {
			cfg.Tracer.Attach(l)
		}
		nd := &Node{
			ID:    l.ID(),
			Index: i,
			K:     nk,
			MAC:   m,
			Link:  l,
			Meter: meter,
			Mob:   mob,
			RNG:   nodeRNG,
		}
		if keys != nil {
			nd.SignKP = keys[i]
		}

		if cfg.IC {
			nd.Susp = icnet.NewSuspicionManager(nk, cfg.TempSuspicion)
			nd.Intercept = icnet.NewInterceptor(nd.Susp)
			l.AddFilter(nd.Intercept)
		}

		if cfg.STS.Period > 0 {
			stsDeps := sts.Deps{
				ID:   nd.ID,
				K:    nk,
				Link: l,
				RNG:  nodeRNG.Split("sts"),
			}
			if cfg.STS.Authenticate {
				if nd.SignKP != nil {
					stsDeps.Auth = sts.NewRSAAuth(nd.SignKP, net.Dir)
				} else {
					stsDeps.Auth = sts.NewSimAuth([]byte(fmt.Sprintf("sts-%d", cfg.Seed)), nd.ID, cfg.SigWireBytes/2)
				}
			}
			if cfg.STS.Handshake {
				stsDeps.Party = nsl.NewParty(int64(i), nd.SignKP, net.Dir, nil)
			}
			svc, err := sts.New(cfg.STS, stsDeps)
			if err != nil {
				return nil, fmt.Errorf("node %d: sts: %w", i, err)
			}
			nd.STS = svc
		}

		nd.Link.OnRecv(nd.dispatch)
		net.Nodes = append(net.Nodes, nd)
	}

	// Voting services are built in a second pass so callbacks can close
	// over the fully assembled node.
	if cfg.IC {
		net.Memos = make([]*sigcache.Cache, shards)
		for s := range net.Memos {
			net.Memos[s] = sigcache.FromEnv()
		}
		net.Memo = net.Memos[0]
		for i, nd := range net.Nodes {
			var cbs vote.Callbacks
			if cfg.Callbacks != nil {
				cbs = cfg.Callbacks(nd)
			}
			memo := net.Memo
			if set != nil {
				memo = net.Memos[cfg.ShardOf(geo.Point(nd.Mob.(mobility.Static)))]
			}
			vs, err := vote.New(cfg.Vote, vote.Deps{
				ID:     nd.ID,
				K:      nd.K,
				Link:   nd.Link,
				Topo:   nd.STS,
				Ring:   net.Ring,
				Keys:   net.NodeKeys[i],
				Susp:   nd.Susp,
				SignKP: nd.SignKP,
				Dir:    net.Dir,
				Crypto: cfg.Crypto,
				Energy: nd.Meter,
				Memo:   memo,
			}, cbs)
			if err != nil {
				return nil, fmt.Errorf("node %d: vote: %w", i, err)
			}
			nd.Vote = vs
			nd.Intercept.SetVerifier(vs.VerifierFor())
		}
		// Dealerless-keygen verdicts carry network-wide: a blame is backed
		// by an opened sub-share contradicting its broadcast commitment, a
		// proof any member can check, so every node records the suspicion —
		// the same treatment a corrupt partial signature earns. Silence
		// carries no proof of malice, so it only earns temporary suspicion.
		for _, nd := range net.Nodes {
			for _, b := range net.DKGBlamed {
				if b != nd.Index {
					nd.Susp.SuspectPermanent(link.NodeID(b), "dkg: sub-share contradicts commitment")
				}
			}
			for _, s := range net.DKGSilent {
				if s != nd.Index {
					nd.Susp.SuspectTemporary(link.NodeID(s), "dkg: no dealing received")
				}
			}
		}
	}
	return net, nil
}

// StartSTS starts every node's topology service.
func (net *Network) StartSTS() {
	for _, nd := range net.Nodes {
		if nd.STS != nil {
			nd.STS.Start()
		}
	}
}

// StartSTSJittered schedules every node's topology-service start at an
// independent uniform offset in [0, window), drawn from rng in node
// order. Staggered starts avoid the synchronized beacon collision storm
// a dense deployment suffers when every service fires at t=0.
func (net *Network) StartSTSJittered(rng *sim.RNG, window sim.Duration) {
	for _, nd := range net.Nodes {
		if nd.STS != nil {
			svc := nd.STS
			// Jitter values are drawn in node order from the shared stream
			// regardless of sharding, so the schedule is shard-invariant;
			// each start runs on its node's home kernel.
			nd.K.ScheduleFire(rng.Jitter(window), svc.Start)
		}
	}
}

// Run drives the simulation to the given virtual time. Under sharding the
// whole set runs; per-shard channel counters are folded into Channel.Stats
// once the run completes so harvest code sees whole-channel totals.
func (net *Network) Run(until sim.Time) error {
	if net.Set != nil {
		if err := net.Set.Run(until); err != nil {
			return err
		}
		net.Channel.MergeShardStats()
		return nil
	}
	return net.K.Run(until)
}

// TotalEnergy returns the summed energy consumption of all nodes at the
// current virtual time, in joules.
func (net *Network) TotalEnergy() float64 {
	var total float64
	for _, nd := range net.Nodes {
		total += nd.Meter.Consumed(net.K.Now())
	}
	return total
}
