package node

import (
	"testing"

	"innercircle/internal/energy"
	"innercircle/internal/geo"
	"innercircle/internal/link"
	"innercircle/internal/mac"
	"innercircle/internal/mobility"
	"innercircle/internal/radio"
	"innercircle/internal/sim"
	"innercircle/internal/sts"
	"innercircle/internal/vote"
)

func baseConfig(n int) Config {
	return Config{
		N:      n,
		Seed:   1,
		Radio:  radio.Default80211(),
		MAC:    mac.Default80211(),
		Energy: energy.NS2Default(),
		Mobility: func(i int, _ *sim.RNG) mobility.Model {
			return mobility.Static(geo.Point{X: float64(i) * 100})
		},
	}
}

type ping struct{ n int }

func (ping) Size() int { return 16 }

func TestBuildPlainNetwork(t *testing.T) {
	net, err := Build(baseConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Nodes) != 3 {
		t.Fatalf("built %d nodes", len(net.Nodes))
	}
	for i, nd := range net.Nodes {
		if int(nd.ID) != i || nd.Index != i {
			t.Fatalf("node %d has ID %v", i, nd.ID)
		}
		if nd.STS != nil || nd.Vote != nil || nd.Intercept != nil {
			t.Fatal("plain network has IC components")
		}
	}
}

func TestDispatchToHandlers(t *testing.T) {
	net, err := Build(baseConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	var got []link.Env
	consumed := 0
	net.Nodes[1].Handle(func(e link.Env) bool {
		if _, ok := e.Msg.(ping); ok {
			got = append(got, e)
			consumed++
			return true
		}
		return false
	})
	second := 0
	net.Nodes[1].Handle(func(e link.Env) bool { second++; return true })
	if err := net.Nodes[0].Link.SendRaw(1, ping{1}); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(1); err != nil {
		t.Fatal(err)
	}
	if consumed != 1 || len(got) != 1 {
		t.Fatalf("handler saw %d messages", consumed)
	}
	if second != 0 {
		t.Fatal("second handler ran despite first consuming the message")
	}
}

func TestICNetworkWiring(t *testing.T) {
	cfg := baseConfig(4)
	cfg.IC = true
	cfg.STS = sts.Config{Period: 0.9, Delta: 2, Authenticate: true, BeaconBaseBytes: 28}
	cfg.Vote = vote.Config{Mode: vote.Deterministic, L: 1, RoundTimeout: 0.2, Retries: 1}
	agreed := 0
	cfg.Callbacks = func(nd *Node) vote.Callbacks {
		return vote.Callbacks{
			Check:    func(link.NodeID, []byte) bool { return true },
			OnAgreed: func(vote.AgreedMsg) { agreed++ },
		}
	}
	net, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.StartSTS()
	if err := net.Run(4); err != nil {
		t.Fatal(err)
	}
	if err := net.Nodes[1].Vote.Propose([]byte("value")); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(6); err != nil {
		t.Fatal(err)
	}
	if agreed == 0 {
		t.Fatal("IC network completed no agreement")
	}
	if net.Ring == nil {
		t.Fatal("no threshold ring dealt")
	}
}

func TestICRequiresSTS(t *testing.T) {
	cfg := baseConfig(3)
	cfg.IC = true
	if _, err := Build(cfg); err == nil {
		t.Fatal("IC without STS accepted")
	}
}

func TestBuildValidation(t *testing.T) {
	cfg := baseConfig(0)
	if _, err := Build(cfg); err == nil {
		t.Error("N=0 accepted")
	}
	cfg = baseConfig(2)
	cfg.Mobility = nil
	if _, err := Build(cfg); err == nil {
		t.Error("missing mobility accepted")
	}
}

func TestKeyCountMismatch(t *testing.T) {
	keys, err := GenerateKeySet(2, 512)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(3)
	cfg.Keys = keys
	if _, err := Build(cfg); err == nil {
		t.Fatal("mismatched key count accepted")
	}
}

func TestTotalEnergyAccumulates(t *testing.T) {
	net, err := Build(baseConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Run(10); err != nil {
		t.Fatal(err)
	}
	// Two idle nodes for 10 s at 35 mW each = 0.7 J.
	if got := net.TotalEnergy(); got < 0.69 || got > 0.71 {
		t.Fatalf("TotalEnergy = %v, want ~0.7", got)
	}
}

func TestGenerateKeySet(t *testing.T) {
	keys, err := GenerateKeySet(3, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 {
		t.Fatalf("got %d keys", len(keys))
	}
	for i, kp := range keys {
		if kp == nil || kp.Pub.N == nil {
			t.Fatalf("key %d is incomplete", i)
		}
	}
}
