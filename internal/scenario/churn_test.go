package scenario

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"innercircle/internal/sts"
	"innercircle/internal/vote"
)

// icSpec is a small runnable inner-circle spec for churn tests.
func icSpec() *Spec {
	s := validSpec()
	s.SimTime = 10
	s.Stack.IC = true
	s.Stack.STS = sts.Config{Period: 0.9, Delta: 2, Authenticate: true, BeaconBaseBytes: 28}
	s.Stack.Vote = vote.Config{Mode: vote.Deterministic, L: 2, RoundTimeout: 0.5, Retries: 1}
	s.Stack.MaxL = 3
	return s
}

func TestChurnValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(s *Spec)
		wantErr string
	}{
		{"nil churn", func(s *Spec) { s.Churn = nil }, ""},
		{"zero churn without IC", func(s *Spec) { s.Stack.IC = false; s.Churn = &Churn{} }, ""},
		{"events without IC", func(s *Spec) {
			s.Stack.IC = false
			s.Churn = &Churn{CrashRejoin: 1}
		}, "requires the inner circle"},
		{"valid schedule", func(s *Spec) { s.Churn = &Churn{CrashRejoin: 2, Leaves: 1} }, ""},
		{"bad policy", func(s *Spec) { s.Churn = &Churn{CrashRejoin: 1, Reshare: "sometimes"} }, "unknown reshare policy"},
		{"interval policy without interval", func(s *Spec) {
			s.Churn = &Churn{CrashRejoin: 1, Reshare: ReshareEvery}
		}, "reshare_interval"},
		{"negative counts", func(s *Spec) { s.Churn = &Churn{Leaves: -1} }, "negative churn event"},
		{"negative times", func(s *Spec) { s.Churn = &Churn{CrashRejoin: 1, Downtime: -2} }, "negative churn times"},
		{"all nodes protected", func(s *Spec) {
			s.Churn = &Churn{CrashRejoin: 1, Protect: 10}
		}, "protects all"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := icSpec()
			tc.mutate(s)
			err := s.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestChurnSpecJSONRoundTrip pins the wire form of the churn axis: the
// field round-trips byte-identically, its absence marshals to nothing,
// and unknown churn sub-fields are rejected.
func TestChurnSpecJSONRoundTrip(t *testing.T) {
	s := icSpec()
	s.Churn = &Churn{
		CrashRejoin:     4,
		Leaves:          1,
		Start:           2,
		Window:          6,
		Downtime:        1.5,
		Reshare:         ReshareEvery,
		ReshareInterval: 3,
		RefreshInterval: 5,
		Protect:         2,
	}
	first, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(first), `"churn":{"crash_rejoin":4`) {
		t.Fatalf("churn field missing from wire form: %s", first)
	}
	var back Spec
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped spec invalid: %v", err)
	}
	second, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("re-marshal differs:\nfirst:  %s\nsecond: %s", first, second)
	}

	// No churn → no churn key on the wire (old artifacts hash unchanged).
	s.Churn = nil
	plain, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plain), "churn") {
		t.Fatalf("nil churn leaked into wire form: %s", plain)
	}

	// Unknown fields inside the churn object fail loudly.
	drifted := bytes.Replace(first, []byte(`"crash_rejoin":4`), []byte(`"crash_rejoin":4,"surprise":1`), 1)
	var bad Spec
	if err := json.Unmarshal(drifted, &bad); err == nil {
		t.Fatal("unknown churn field accepted")
	}
}

// TestChurnRunDeterministic: a churn replica is reproducible, reports its
// lifecycle counters, and is forced onto a single kernel even when the
// spec requests shards.
func TestChurnRunDeterministic(t *testing.T) {
	run := func(shards int) *Result {
		s := icSpec()
		s.Shards = shards
		s.Churn = &Churn{CrashRejoin: 2, Leaves: 1, Start: 2, Window: 4, Downtime: 1}
		res, err := Run(s)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b, sharded := run(0), run(0), run(4)
	if a.Counter(CtrChurnEvents) == 0 {
		t.Fatal("no churn events took effect")
	}
	if a.Counter(CtrChurnReshares) == 0 {
		t.Fatal("event policy executed no reshares")
	}
	if a.Gauge(GaugeMembershipEpoch) == 0 {
		t.Fatal("membership epoch never advanced")
	}
	if a.Counters.String() != b.Counters.String() || a.Gauges.String() != b.Gauges.String() {
		t.Fatalf("same seed diverged:\n%s | %s\nvs\n%s | %s", a.Counters, a.Gauges, b.Counters, b.Gauges)
	}
	if sharded.Shards != 1 {
		t.Fatalf("churn replica executed with %d shards", sharded.Shards)
	}
	if a.Counters.String() != sharded.Counters.String() || a.Gauges.String() != sharded.Gauges.String() {
		t.Fatalf("shard request changed churn results:\n%s | %s\nvs\n%s | %s",
			a.Counters, a.Gauges, sharded.Counters, sharded.Gauges)
	}
}

// TestChurnOffMatchesNoChurn: churn disabled — whether by a nil field, a
// zero schedule, or the IC_CHURN kill switch over a live schedule — runs
// byte-identically to a spec that predates the churn axis. The churn=0
// sweep column is the seed sweep.
func TestChurnOffMatchesNoChurn(t *testing.T) {
	run := func(mutate func(s *Spec)) *Result {
		s := icSpec()
		mutate(s)
		res, err := Run(s)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	base := run(func(s *Spec) {})
	zero := run(func(s *Spec) { s.Churn = &Churn{} })
	t.Setenv("IC_CHURN", "off")
	killed := run(func(s *Spec) { s.Churn = &Churn{CrashRejoin: 3, Leaves: 2} })
	for name, res := range map[string]*Result{"zero-schedule": zero, "IC_CHURN=off": killed} {
		if base.Counters.String() != res.Counters.String() || base.Gauges.String() != res.Gauges.String() {
			t.Fatalf("%s diverged from the churn-free replica:\n%s | %s\nvs\n%s | %s",
				name, base.Counters, base.Gauges, res.Counters, res.Gauges)
		}
	}
}
