package scenario

import (
	"strings"
	"testing"

	"innercircle/internal/energy"
	"innercircle/internal/faults"
	"innercircle/internal/geo"
	"innercircle/internal/mac"
	"innercircle/internal/node"
	"innercircle/internal/radio"
	"innercircle/internal/sim"
	"innercircle/internal/traffic"
	"innercircle/internal/vote"
)

// nopComponent attaches nothing; used to exercise optional interfaces.
type nopComponent struct{}

func (nopComponent) Attach(*Env, *node.Node) {}

// floorComponent vetoes populations below its floor.
type floorComponent struct {
	nopComponent
	floor int
}

func (c floorComponent) Validate(s *Spec) error {
	if s.Nodes < c.floor {
		return errFloor
	}
	return nil
}

var errFloor = &floorError{}

type floorError struct{}

func (*floorError) Error() string { return "population below floor" }

// registrarComponent implements Registrar.
type registrarComponent struct{ nopComponent }

func (registrarComponent) Register(*Env, *node.Node) vote.Callbacks { return vote.Callbacks{} }

func validSpec() *Spec {
	return &Spec{
		Name:    "test",
		Nodes:   10,
		Seed:    1,
		SimTime: 5,
		Topology: RandomWaypoint{
			Region:   geo.Square(500),
			MinSpeed: 1, MaxSpeed: 1,
		},
		Stack: Stack{
			Radio:  radio.Default80211(),
			MAC:    mac.Default80211(),
			Energy: energy.NS2Default(),
		},
	}
}

func TestSpecValidate(t *testing.T) {
	camp3 := faults.BlackholePreset(3)
	camp9 := faults.BlackholePreset(9)
	cases := []struct {
		name    string
		mutate  func(s *Spec)
		wantErr string // substring; empty means valid
	}{
		{"valid minimal", func(s *Spec) {}, ""},
		{"no nodes", func(s *Spec) { s.Nodes = 0 }, "at least 1 node"},
		{"no sim time", func(s *Spec) { s.SimTime = 0 }, "positive sim time"},
		{"no topology", func(s *Spec) { s.Topology = nil }, "topology required"},
		{"component veto", func(s *Spec) {
			s.Stack.Components = []Component{floorComponent{floor: 20}}
		}, "population below floor"},
		{"component floor met", func(s *Spec) {
			s.Stack.Components = []Component{floorComponent{floor: 5}}
		}, ""},
		{"two registrars", func(s *Spec) {
			s.Stack.Components = []Component{registrarComponent{}, registrarComponent{}}
		}, "at most one component"},
		{"traffic invalid", func(s *Spec) {
			s.Traffic = &traffic.CBR{Connections: 2, Rate: 0, PacketBytes: 1}
		}, "rate"},
		{"traffic over-subscribed", func(s *Spec) {
			s.Traffic = &traffic.CBR{Connections: 6, Rate: 1, PacketBytes: 1}
		}, "cannot host"},
		{"adversary without campaign", func(s *Spec) {
			s.Adversary = CampaignAdversary{}
		}, "needs a campaign"},
		{"endpoints plus attackers fit", func(s *Spec) {
			s.Traffic = &traffic.CBR{Connections: 3, Rate: 1, PacketBytes: 1}
			s.Adversary = CampaignAdversary{Campaign: &camp3}
		}, ""},
		{"endpoints plus attackers exceed population", func(s *Spec) {
			s.Traffic = &traffic.CBR{Connections: 3, Rate: 1, PacketBytes: 1}
			s.Adversary = CampaignAdversary{Campaign: &camp9}
		}, "traffic endpoints"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mutate(s)
			err := s.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// Satellite check: the campaign budget matches the traffic order exactly —
// a campaign whose Count selector fills every non-endpoint node validates,
// one more node fails.
func TestValidateBudgetBoundary(t *testing.T) {
	fits := faults.BlackholePreset(4)
	s := validSpec()
	s.Traffic = &traffic.CBR{Connections: 3, Rate: 1, PacketBytes: 1}
	s.Adversary = CampaignAdversary{Campaign: &fits}
	if err := s.Validate(); err != nil {
		t.Fatalf("4 attackers + 6 endpoints on 10 nodes should fit: %v", err)
	}
	over := faults.BlackholePreset(5)
	s.Adversary = CampaignAdversary{Campaign: &over}
	if err := s.Validate(); err == nil {
		t.Fatal("5 attackers + 6 endpoints on 10 nodes accepted")
	}
}

func TestSinkTallyDeliver(t *testing.T) {
	var tally SinkTally
	tally.Deliver("c0-1")                   // intact string
	tally.Deliver(CorruptMark + "c0-2")     // corrupt-marked string
	tally.Deliver(42)                       // non-string payload counts intact
	tally.Deliver(nil)                      // nil payload counts intact
	tally.Deliver(CorruptMark)              // bare mark is corrupt
	tally.Deliver("x" + CorruptMark + "yz") // mark not at front: intact
	if tally.Received != 4 {
		t.Fatalf("Received = %d, want 4", tally.Received)
	}
	if tally.Corrupt != 2 {
		t.Fatalf("Corrupt = %d, want 2", tally.Corrupt)
	}
}

// epochCounter is a minimal harvesting component driving the smoke run.
type epochCounter struct {
	nopComponent
	fired int
}

func (c *epochCounter) Harvest(_ *Env, res *Result) {
	res.Counters.Add("epochs", uint64(c.fired))
}

func TestRunSmokeDeterministic(t *testing.T) {
	run := func() *Result {
		c := &epochCounter{}
		s := validSpec()
		s.Stack.Components = []Component{c}
		s.Traffic = &traffic.Epochs{Period: 0.25, OnEpoch: func(int64, sim.Time) { c.fired++ }}
		res, err := Run(s)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.Counter("epochs") == 0 {
		t.Fatal("no epochs fired")
	}
	if a.Gauge(GaugeEnergyPerNodeJ) <= 0 {
		t.Fatal("no energy accounted")
	}
	if a.Counters.String() != b.Counters.String() || a.Gauges.String() != b.Gauges.String() {
		t.Fatalf("same seed diverged:\n%s | %s\nvs\n%s | %s",
			a.Counters, a.Gauges, b.Counters, b.Gauges)
	}
}
