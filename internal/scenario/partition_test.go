package scenario

import (
	"testing"

	"innercircle/internal/geo"
)

// partitionPlacements builds per-column node placements for StripePartition
// property tests: counts[c] nodes in grid column c (column width = rangeM),
// spread across the column's interior.
func partitionPlacements(counts []int, rangeM float64) []geo.Point {
	var pts []geo.Point
	for c, n := range counts {
		for i := 0; i < n; i++ {
			frac := (float64(i) + 0.5) / float64(n)
			pts = append(pts, geo.Point{
				X: (float64(c) + 0.1 + 0.8*frac) * rangeM,
				Y: float64(i%7) * 10,
			})
		}
	}
	return pts
}

// shardLoads folds a partition back into per-shard node counts.
func shardLoads(pts []geo.Point, ownerOf func(geo.Point) int, shards int) []int {
	loads := make([]int, shards)
	for _, p := range pts {
		loads[ownerOf(p)]++
	}
	return loads
}

// checkAdjacency asserts the stripe invariants that make cross-shard radio
// traffic sound: column ownership is non-decreasing left to right with
// steps of at most one shard, every shard owns at least one column, and
// the border classifier flags exactly the nodes whose one-range reach
// crosses an ownership boundary.
func checkAdjacency(t *testing.T, counts []int, rangeM float64, ownerOf func(geo.Point) int, borderOf func(geo.Point) bool, shards int) {
	t.Helper()
	prev := 0
	seen := make([]bool, shards)
	for c := range counts {
		probe := geo.Point{X: (float64(c) + 0.5) * rangeM}
		own := ownerOf(probe)
		if own < 0 || own >= shards {
			t.Fatalf("column %d owned by shard %d, outside [0,%d)", c, own, shards)
		}
		if own < prev || own > prev+1 {
			t.Fatalf("column %d jumps from shard %d to shard %d (|Δcol|<=1 adjacency broken)", c, prev, own)
		}
		seen[own] = true
		prev = own
		left := ownerOf(geo.Point{X: probe.X - rangeM})
		right := ownerOf(geo.Point{X: probe.X + rangeM})
		if wantBorder := left != own || right != own; borderOf(probe) != wantBorder {
			t.Fatalf("column %d: borderOf = %v, want %v (owners %d/%d/%d)", c, borderOf(probe), wantBorder, left, own, right)
		}
	}
	if ownerOf(geo.Point{X: 0.5 * rangeM}) != 0 {
		t.Fatal("leftmost column not owned by shard 0")
	}
	for s, ok := range seen {
		if !ok {
			t.Fatalf("shard %d owns no column", s)
		}
	}
}

// TestStripePartitionAdjacencyUnderSkew: the weighted partitioner must keep
// the adjacency and coverage invariants for adversarial density profiles —
// the invariants the horizon protocol's soundness rests on.
func TestStripePartitionAdjacencyUnderSkew(t *testing.T) {
	const rangeM = 100.0
	profiles := map[string][]int{
		"uniform":     {8, 8, 8, 8, 8, 8, 8, 8},
		"one-hot":     {1, 1, 1, 400, 1, 1, 1, 1},
		"geometric":   {1, 2, 4, 8, 16, 32, 64, 128, 256, 512},
		"half-empty":  {200, 180, 220, 190, 1, 1, 1, 1},
		"edge-heavy":  {500, 1, 1, 1, 1, 1, 1, 500},
		"sparse-tail": {50, 50, 50, 50, 50, 1, 1, 1, 1, 1, 1, 1},
	}
	for name, counts := range profiles {
		for _, shards := range []int{2, 3, 4, 6} {
			pts := partitionPlacements(counts, rangeM)
			ownerOf, borderOf, eff := StripePartition(pts, rangeM, shards)
			if eff != shards {
				t.Fatalf("%s shards=%d: effective = %d, want %d (cols=%d)", name, shards, eff, shards, len(counts))
			}
			checkAdjacency(t, counts, rangeM, ownerOf, borderOf, eff)
		}
	}
}

// TestStripePartitionBalanceBound pins the load guarantee: under any
// density the heaviest shard carries at most total/shards plus one
// column's worth of nodes — the straggler bound that makes horizon
// progress proportional instead of gated by the densest stripe.
func TestStripePartitionBalanceBound(t *testing.T) {
	const rangeM = 100.0
	profiles := map[string][]int{
		"one-hot":    {1, 1, 1, 400, 1, 1, 1, 1},
		"geometric":  {1, 2, 4, 8, 16, 32, 64, 128, 256, 512},
		"half-empty": {200, 180, 220, 190, 1, 1, 1, 1},
		"edge-heavy": {500, 1, 1, 1, 1, 1, 1, 500},
		"ramp":       {10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120},
	}
	for name, counts := range profiles {
		total, maxCol := 0, 0
		for _, n := range counts {
			total += n
			if n > maxCol {
				maxCol = n
			}
		}
		for _, shards := range []int{2, 3, 4} {
			pts := partitionPlacements(counts, rangeM)
			ownerOf, _, eff := StripePartition(pts, rangeM, shards)
			if eff != shards {
				t.Fatalf("%s shards=%d: effective = %d", name, shards, eff)
			}
			loads := shardLoads(pts, ownerOf, eff)
			bound := float64(total)/float64(shards) + float64(maxCol)
			for s, load := range loads {
				if float64(load) > bound+1e-9 {
					t.Errorf("%s shards=%d: shard %d carries %d nodes, bound %.1f (loads %v)", name, shards, s, load, bound, loads)
				}
			}
		}
	}
}

// TestStripePartitionWeightedBeatsLegacyOnSkew: the motivating case — all
// the density in one half of the region. The legacy even-column split puts
// nearly everything in half the shards; the weighted split must strictly
// reduce the heaviest shard.
func TestStripePartitionWeightedBeatsLegacyOnSkew(t *testing.T) {
	const rangeM = 100.0
	counts := []int{300, 280, 310, 290, 2, 1, 2, 1}
	pts := partitionPlacements(counts, rangeM)

	maxLoad := func(env string) int {
		t.Setenv("IC_SHARD_PART", env)
		ownerOf, _, eff := StripePartition(pts, rangeM, 4)
		if eff != 4 {
			t.Fatalf("effective = %d, want 4", eff)
		}
		m := 0
		for _, l := range shardLoads(pts, ownerOf, eff) {
			if l > m {
				m = l
			}
		}
		return m
	}
	legacy := maxLoad("legacy")
	weighted := maxLoad("")
	if weighted >= legacy {
		t.Fatalf("weighted max load %d not below legacy %d on a half-empty field", weighted, legacy)
	}
}

// TestStripePartitionUniformMatchesLegacy: with exactly uniform per-column
// node counts the weighted boundary rule degenerates to the legacy
// even-column split — every node keeps its owner and border classification
// bit for bit, which is what lets the weighted partitioner ship as the
// default without perturbing uniform-density sweeps' shard shapes.
func TestStripePartitionUniformMatchesLegacy(t *testing.T) {
	const rangeM = 75.0
	for _, tc := range []struct{ cols, perCol, shards int }{
		{8, 5, 2}, {8, 5, 3}, {10, 3, 4}, {12, 7, 5}, {7, 4, 7}, {9, 1, 2},
	} {
		counts := make([]int, tc.cols)
		for c := range counts {
			counts[c] = tc.perCol
		}
		pts := partitionPlacements(counts, rangeM)

		t.Setenv("IC_SHARD_PART", "legacy")
		legacyOwner, legacyBorder, legacyEff := StripePartition(pts, rangeM, tc.shards)
		t.Setenv("IC_SHARD_PART", "")
		weightedOwner, weightedBorder, weightedEff := StripePartition(pts, rangeM, tc.shards)

		if legacyEff != weightedEff {
			t.Fatalf("cols=%d shards=%d: effective %d (legacy) vs %d (weighted)", tc.cols, tc.shards, legacyEff, weightedEff)
		}
		for _, p := range pts {
			if legacyOwner(p) != weightedOwner(p) {
				t.Fatalf("cols=%d shards=%d: node at x=%.1f owned by %d (legacy) vs %d (weighted)",
					tc.cols, tc.shards, p.X, legacyOwner(p), weightedOwner(p))
			}
			if legacyBorder(p) != weightedBorder(p) {
				t.Fatalf("cols=%d shards=%d: node at x=%.1f border %v (legacy) vs %v (weighted)",
					tc.cols, tc.shards, p.X, legacyBorder(p), weightedBorder(p))
			}
		}
	}
}

// TestStripePartitionDegenerateInputs: the narrow-deployment and bad-input
// fallbacks must keep returning the unsharded sentinel.
func TestStripePartitionDegenerateInputs(t *testing.T) {
	pts := partitionPlacements([]int{5}, 100)
	if _, _, eff := StripePartition(pts, 100, 4); eff != 1 {
		t.Fatalf("single-column deployment: effective = %d, want 1", eff)
	}
	if _, _, eff := StripePartition(nil, 100, 4); eff != 1 {
		t.Fatalf("empty deployment: effective = %d, want 1", eff)
	}
	if _, _, eff := StripePartition(pts, 0, 4); eff != 1 {
		t.Fatalf("zero range: effective = %d, want 1", eff)
	}
	if _, _, eff := StripePartition(partitionPlacements([]int{3, 3, 3}, 50), 50, 1); eff != 1 {
		t.Fatalf("shards=1: effective = %d, want 1", eff)
	}
	// Out-of-band probe points clamp to the occupied column span.
	ownerOf, _, eff := StripePartition(partitionPlacements([]int{4, 4, 4, 4}, 50), 50, 2)
	if eff != 2 {
		t.Fatalf("effective = %d, want 2", eff)
	}
	if got := ownerOf(geo.Point{X: -1e6}); got != 0 {
		t.Fatalf("far-left probe owned by %d, want 0", got)
	}
	if got := ownerOf(geo.Point{X: 1e6}); got != 1 {
		t.Fatalf("far-right probe owned by %d, want 1", got)
	}
}
