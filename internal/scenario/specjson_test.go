package scenario

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"innercircle/internal/crypto/nsl"
	"innercircle/internal/energy"
	"innercircle/internal/faults"
	"innercircle/internal/geo"
	"innercircle/internal/mac"
	"innercircle/internal/radio"
	"innercircle/internal/sts"
	"innercircle/internal/trace"
	"innercircle/internal/traffic"
	"innercircle/internal/vote"
)

// declSpec returns a fully-populated declarative Spec: every serializable
// union arm in play, no stateful parts.
func declSpec() Spec {
	camp := faults.BlackholePreset(3)
	return Spec{
		Name:    "wire",
		Nodes:   50,
		Seed:    7,
		SimTime: 300,
		Shards:  2,
		Topology: RandomWaypoint{
			Region:   geo.Square(1000),
			MaxSpeed: 10,
			Pause:    1,
		},
		Stack: Stack{
			Radio:        radio.Default80211(),
			MAC:          mac.Default80211(),
			Energy:       energy.NS2Default(),
			IC:           true,
			STS:          sts.DefaultConfig(),
			Vote:         vote.Config{L: 2, RoundTimeout: 1, Retries: 2},
			MaxL:         7,
			SigWireBytes: 128,
			STSStart:     STSStart{Jitter: 0.5},
		},
		Traffic:   &traffic.CBR{Connections: 10, Rate: 4, PacketBytes: 512, From: 5},
		Adversary: CampaignAdversary{Campaign: &camp},
	}
}

// TestSpecJSONRoundTrip pins the codec contract: a Validate-clean
// declarative Spec survives Marshal → Unmarshal → Marshal with
// byte-identical output, still Validate-clean.
func TestSpecJSONRoundTrip(t *testing.T) {
	grid := declSpec()
	grid.Topology = BaseStationGrid{Region: geo.Square(200), GridJitter: 4}
	grid.Traffic = nil
	grid.Adversary = nil
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"full manet", declSpec()},
		{"sensor grid, no traffic, no adversary", grid},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.spec.Validate(); err != nil {
				t.Fatalf("input spec invalid: %v", err)
			}
			first, err := json.Marshal(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			var back Spec
			if err := json.Unmarshal(first, &back); err != nil {
				t.Fatal(err)
			}
			if err := back.Validate(); err != nil {
				t.Fatalf("round-tripped spec invalid: %v", err)
			}
			second, err := json.Marshal(back)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first, second) {
				t.Fatalf("re-marshal differs:\nfirst:  %s\nsecond: %s", first, second)
			}
		})
	}
}

// TestSpecJSONRejectsState: a Spec carrying live state must refuse to
// marshal instead of silently dropping it.
func TestSpecJSONRejectsState(t *testing.T) {
	withComponents := declSpec()
	withComponents.Stack.Components = []Component{nil}
	withTracer := declSpec()
	withTracer.Stack.Tracer = trace.New(16)
	withKeys := declSpec()
	withKeys.Stack.Keys = []*nsl.KeyPair{}
	withEpochs := declSpec()
	withEpochs.Traffic = &traffic.Epochs{Period: 5}
	for _, tc := range []struct {
		name string
		spec Spec
		want string
	}{
		{"components", withComponents, "components"},
		{"tracer", withTracer, "tracer"},
		{"keys", withKeys, "keys"},
		{"epoch traffic", withEpochs, "not serializable"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := json.Marshal(tc.spec)
			if err == nil {
				t.Fatal("marshal accepted a stateful spec")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestSpecJSONRejectsUnknownFields: schema drift must fail loudly.
func TestSpecJSONRejectsUnknownFields(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   string
	}{
		{"top level", `{"name":"x","nodes":1,"sim_time":1,"stack":{},"surprise":true}`},
		{"nested stack", `{"name":"x","nodes":1,"sim_time":1,"stack":{"radio":{"range":1,"warp":9}}}`},
		{"unknown topology kind", `{"name":"x","nodes":1,"sim_time":1,"stack":{},"topology":{"kind":"torus"}}`},
		{"kind without payload", `{"name":"x","nodes":1,"sim_time":1,"stack":{},"topology":{"kind":"random_waypoint"}}`},
		{"unknown traffic kind", `{"name":"x","nodes":1,"sim_time":1,"stack":{},"traffic":{"kind":"poisson"}}`},
		{"unknown adversary kind", `{"name":"x","nodes":1,"sim_time":1,"stack":{},"adversary":{"kind":"wormhole"}}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var s Spec
			if err := json.Unmarshal([]byte(tc.in), &s); err == nil {
				t.Fatalf("accepted %s", tc.in)
			}
		})
	}
}
