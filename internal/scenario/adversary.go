package scenario

import (
	"fmt"

	"innercircle/internal/faults"
)

// Adversary injects faults and attacks into a built replica.
type Adversary interface {
	// Budget returns how many nodes of the attacker-selection order the
	// adversary claims. Spec.Validate rejects a scenario whose traffic
	// reservation plus adversary budget exceeds the population — the
	// classic "connections + attackers > nodes" misconfiguration.
	Budget(n int) (int, error)
	// Apply wires the adversary into the replica. order is the
	// attacker-selection order (the traffic plan's non-endpoint nodes;
	// nil means 0..N-1). The returned Harvester, if any, folds the
	// adversary's coverage counters into the Result after the run.
	Apply(env *Env, order []int) (Harvester, error)
}

// CampaignAdversary runs a declarative fault campaign (internal/faults)
// against the replica. The fabric wiring — link taps, router and vote
// control surfaces, the payload-corruption hook — is assembled once here
// from the Env, so scenarios never hand-wire a faults.Fabric.
type CampaignAdversary struct {
	Campaign *faults.Campaign `json:"campaign"`
}

// Budget implements Adversary: the campaign's Count selectors all draw
// from the head of the attacker order, so the claim is their maximum.
func (a CampaignAdversary) Budget(int) (int, error) {
	if a.Campaign == nil {
		return 0, fmt.Errorf("scenario: campaign adversary needs a campaign")
	}
	if err := a.Campaign.Validate(); err != nil {
		return 0, err
	}
	return a.Campaign.CountBudget(), nil
}

// Apply implements Adversary.
func (a CampaignAdversary) Apply(env *Env, order []int) (Harvester, error) {
	applied, err := faults.Apply(faults.Fabric{
		K:     env.K(),
		RNG:   env.seed,
		N:     env.Spec.Nodes,
		Order: order,
		Link: func(i int) faults.LinkPort {
			return env.Net.Nodes[i].Link
		},
		Router: env.routerCtl,
		Vote: func(i int) faults.VoteCtl {
			if env.Net.Nodes[i].Vote == nil {
				return nil
			}
			return env.Net.Nodes[i].Vote
		},
		Mutate: env.mutate,
	}, a.Campaign)
	if err != nil {
		return nil, err
	}
	return campaignCoverage{applied: applied}, nil
}

// campaignCoverage folds a campaign's neutralization coverage into the
// Result: injections from the fault report, suppressions from the
// protocol stacks, leaks from the sink tally.
type campaignCoverage struct {
	applied *faults.Applied
}

// Harvest implements Harvester.
func (c campaignCoverage) Harvest(env *Env, res *Result) {
	res.Counters.Add(CtrFaultsInjected, c.applied.Report().TotalInjected())
	var suppressed uint64
	for _, nd := range env.Net.Nodes {
		if nd.Intercept != nil {
			suppressed += nd.Intercept.Stats.SuppressedSuspect + nd.Intercept.Stats.SuppressedBadSig
		}
		if nd.STS != nil {
			suppressed += nd.STS.Stats.BeaconsRejected
		}
		if nd.Vote != nil {
			suppressed += nd.Vote.Stats.PartialsRejected + nd.Vote.Stats.AgreedInvalid
		}
	}
	res.Counters.Add(CtrFaultsSuppressed, suppressed)
	res.Counters.Add(CtrFaultsLeaked, uint64(env.Sink.Corrupt))
}
