package scenario

import (
	"fmt"
	"os"

	"innercircle/internal/node"
	"innercircle/internal/sim"
)

// Reshare policies for the churn axis: how the circle's key material
// follows membership changes.
const (
	// ReshareOnEvent reshares immediately after every effective
	// membership transition (the default). Departed shares die as fast as
	// the circle can react.
	ReshareOnEvent = "event"
	// ReshareEvery reshares on a fixed schedule regardless of events;
	// departed shares stay combinable until the next scheduled epoch.
	ReshareEvery = "interval"
	// ReshareOff never reshares: churn degrades the circle (departed
	// nodes keep valid shares, rejoined nodes never regain any) — the
	// no-neutralization baseline.
	ReshareOff = "off"
)

// Churn is the declarative membership-churn axis of a Spec: a schedule of
// leave and crash-and-rejoin events over the inner circle, plus the
// reshare policy that decides how the level keys follow the surviving
// set. Zero value (and nil) means no churn; a Spec with Churn == nil or
// an all-zero Churn runs byte-identically to one that predates the field.
//
// All schedule randomness (victims and firing times) comes from the
// replica's "churn" seed stream, so the schedule is deterministic per
// seed and — the streams being pure splits — its presence never perturbs
// placement, traffic, or fault draws. Churn forces the replica onto a
// single kernel: a membership transition swaps every node's signer set at
// one instant, which a sharded run cannot order.
//
// The IC_CHURN environment knob ("off" or "0") disables churn at run
// time without touching the spec — the A/B switch for attribution runs.
type Churn struct {
	// CrashRejoin is the number of crash-and-rejoin cycles drawn over the
	// window: the victim crashes (open rounds drained, signers revoked,
	// beaconing stops) and rejoins Downtime later, regaining signers at
	// the next reshare. This is the churn-rate axis sweeps scale.
	CrashRejoin int `json:"crash_rejoin,omitempty"`
	// Leaves is the number of permanent departures drawn over the window.
	Leaves int `json:"leaves,omitempty"`
	// Start and Window bound the event times: each event fires uniformly
	// in [Start, Start+Window). Defaults: SimTime/4 and SimTime/2, which
	// leave the warm-up and the tail churn-free.
	Start  sim.Time     `json:"start,omitempty"`
	Window sim.Duration `json:"window,omitempty"`
	// Downtime is the crash-to-rejoin delay. Default 10 s.
	Downtime sim.Duration `json:"downtime,omitempty"`
	// Reshare selects the reshare policy; default ReshareOnEvent.
	Reshare string `json:"reshare,omitempty"`
	// ReshareInterval is the period of scheduled reshares (policy
	// ReshareEvery), anchored at Start.
	ReshareInterval sim.Duration `json:"reshare_interval,omitempty"`
	// RefreshInterval, when positive, proactively refreshes the level
	// keys every interval from Start (Herzberg-style share rotation),
	// independent of the reshare policy.
	RefreshInterval sim.Duration `json:"refresh_interval,omitempty"`
	// Protect exempts the first Protect node indices from churn. Default
	// 1: node 0 is the base station in the grid topologies.
	Protect int `json:"protect,omitempty"`
}

// Churn metric names (runner counters, present only when churn ran).
const (
	CtrChurnEvents    = "churn_events"         // effective membership transitions
	CtrChurnReshares  = "churn_reshares"       // reshares executed
	CtrChurnRefreshes = "churn_refreshes"      // proactive refreshes executed
	CtrChurnAborted   = "churn_rounds_aborted" // vote rounds drained by transitions
	GaugeMembershipEpoch = "membership_epoch"  // final key epoch
)

// active reports whether this churn config schedules anything at run
// time, honouring the IC_CHURN kill switch.
func (c *Churn) active() bool {
	if c == nil || (c.CrashRejoin <= 0 && c.Leaves <= 0 && c.RefreshInterval <= 0) {
		return false
	}
	if v := os.Getenv("IC_CHURN"); v == "off" || v == "0" {
		return false
	}
	return true
}

// validate checks the static shape (independent of environment knobs).
func (c *Churn) validate(s *Spec) error {
	if c == nil {
		return nil
	}
	switch c.Reshare {
	case "", ReshareOnEvent, ReshareEvery, ReshareOff:
	default:
		return fmt.Errorf("unknown reshare policy %q", c.Reshare)
	}
	if c.CrashRejoin < 0 || c.Leaves < 0 {
		return fmt.Errorf("negative churn event counts (%d crash-rejoin, %d leaves)", c.CrashRejoin, c.Leaves)
	}
	if c.Start < 0 || c.Window < 0 || c.Downtime < 0 || c.ReshareInterval < 0 || c.RefreshInterval < 0 {
		return fmt.Errorf("negative churn times")
	}
	if c.Reshare == ReshareEvery && c.ReshareInterval <= 0 {
		return fmt.Errorf("reshare policy %q needs a positive reshare_interval", ReshareEvery)
	}
	configured := c.CrashRejoin > 0 || c.Leaves > 0 || c.RefreshInterval > 0
	if configured && !s.Stack.IC {
		return fmt.Errorf("churn requires the inner circle (Stack.IC)")
	}
	if configured && c.Protect >= s.Nodes {
		return fmt.Errorf("churn protects all %d nodes", s.Nodes)
	}
	return nil
}

// churnDriver owns a replica's scheduled membership lifecycle.
type churnDriver struct {
	m         *node.Membership
	policy    string
	events    uint64
	reshares  uint64
	refreshes uint64
}

// applyChurn schedules the churn events on the replica's kernel; call
// only when c.active(). Defaults are resolved here, into locals — the
// Spec is never mutated, so a spec marshals back byte-identically no
// matter how often it ran.
func applyChurn(c *Churn, env *Env) (*churnDriver, error) {
	m, err := env.Net.Membership()
	if err != nil {
		return nil, err
	}
	s := env.Spec
	start := c.Start
	if start <= 0 {
		start = s.SimTime / 4
	}
	window := c.Window
	if window <= 0 {
		window = s.SimTime / 2
	}
	downtime := c.Downtime
	if downtime <= 0 {
		downtime = 10
	}
	policy := c.Reshare
	if policy == "" {
		policy = ReshareOnEvent
	}
	protect := c.Protect
	if protect <= 0 {
		protect = 1
	}
	d := &churnDriver{m: m, policy: policy}
	k := env.K()
	rng := env.SeedStream("churn")

	// Draw the whole schedule up front in a fixed order (leaves, then
	// crash cycles: victim then time each), so the stream's draw order —
	// the only thing determinism depends on — is independent of event
	// firing order.
	pick := func() int { return protect + rng.Intn(s.Nodes-protect) }
	for i := 0; i < c.Leaves; i++ {
		victim, at := pick(), sim.Time(rng.Uniform(float64(start), float64(start+window)))
		k.MustSchedule(at, func() {
			d.transition(func() bool { return d.depart(victim, d.m.Leave) })
		})
	}
	for i := 0; i < c.CrashRejoin; i++ {
		victim, at := pick(), sim.Time(rng.Uniform(float64(start), float64(start+window)))
		crashed := false
		k.MustSchedule(at, func() {
			crashed = d.transition(func() bool { return d.depart(victim, d.m.Crash) })
		})
		k.MustSchedule(at+downtime, func() {
			// Rejoin only what this cycle actually crashed: a no-op crash
			// (victim already out) must not resurrect a permanent leaver.
			if !crashed {
				return
			}
			d.transition(func() bool { d.m.Join(victim); return true })
		})
	}
	if policy == ReshareEvery {
		for at := start; at < s.SimTime; at += c.ReshareInterval {
			k.MustSchedule(at, d.reshare)
		}
	}
	if c.RefreshInterval > 0 {
		for at := start + c.RefreshInterval; at < s.SimTime; at += c.RefreshInterval {
			k.MustSchedule(at, d.refresh)
		}
	}
	return d, nil
}

// depart applies a leave/crash operation and reports whether it took
// effect.
func (d *churnDriver) depart(victim int, op func(int)) bool {
	if !d.m.Active(victim) {
		return false
	}
	op(victim)
	return true
}

// transition wraps one membership operation: count it if effective and
// apply the per-event reshare policy.
func (d *churnDriver) transition(op func() bool) bool {
	if !op() {
		return false
	}
	d.events++
	if d.policy == ReshareOnEvent {
		d.reshare()
	}
	return true
}

// reshare moves the keys to the current active set; a circle too small
// to reshare is left degraded (level revocation already limits what the
// survivors can sign).
func (d *churnDriver) reshare() {
	if d.m.ActiveCount() < 2 {
		return
	}
	if d.m.Reshare() == nil {
		d.reshares++
	}
}

// refresh rotates the current shares in place.
func (d *churnDriver) refresh() {
	if d.m.Refresh() == nil {
		d.refreshes++
	}
}

// harvest folds the churn counters into the result.
func (d *churnDriver) harvest(res *Result) {
	res.Counters.Add(CtrChurnEvents, d.events)
	res.Counters.Add(CtrChurnReshares, d.reshares)
	res.Counters.Add(CtrChurnRefreshes, d.refreshes)
	res.Counters.Add(CtrChurnAborted, d.m.Stats.RoundsAborted)
	res.Gauges.Set(GaugeMembershipEpoch, float64(d.m.Stats.Epoch))
}
