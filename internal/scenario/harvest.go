package scenario

import (
	"strings"

	"innercircle/internal/stats"
)

// Counter and gauge names the runner fills for every scenario. Component
// and adversary harvesters add their own names after these, so a Result's
// iteration order is: runner counters, component metrics, adversary
// coverage.
const (
	CtrSent            = "sent"             // application payloads injected
	CtrReceived        = "received"         // delivered intact at a sink
	CtrReceivedCorrupt = "received_corrupt" // delivered with a corrupt-marked payload

	// Fault-injection coverage (added by adversary harvesters):
	CtrFaultsInjected   = "faults_injected"   // attack/fault actions taken
	CtrFaultsSuppressed = "faults_suppressed" // neutralized at the protocol level
	CtrFaultsLeaked     = "faults_leaked"     // corruption that reached a sink

	// Crypto fast-path accounting (IC replicas only). Hits count signature
	// verifications answered from the replica's shared verification memo —
	// each one a modular exponentiation avoided; misses count checks
	// actually performed. Both stay zero with IC_CRYPTO_MEMO=off, and
	// neither feeds any modeled metric: they expose the wall-clock win.
	CtrVoteMemoHits   = "vote_memo_hits"
	CtrVoteMemoMisses = "vote_memo_misses"

	GaugeThroughputPct  = "throughput_pct"    // received/sent, percent
	GaugeEnergyPerNodeJ = "energy_per_node_j" // joules over the run

	// Shard utilization (sharded replicas only; see sim.ShardUtil). The
	// events/straggler gauges are deterministic functions of the partition
	// and are always set when shards > 1. The republish/park/blocked gauges
	// measure executor synchronization in wall-clock terms and vary run to
	// run, so they are only set under IC_SHARD_STATS=1 (the -shardstats
	// flag) — keeping default Results bit-identical across executors. None
	// of them feeds any modeled metric or sweep table.
	GaugeShardEventsMin     = "shard_events_min"      // lightest shard's events executed
	GaugeShardEventsMax     = "shard_events_max"      // heaviest shard's events executed
	GaugeShardStraggler     = "shard_straggler_ratio" // max/min events across shards
	GaugeShardNullRepublish = "shard_null_republishes"
	GaugeShardParks         = "shard_parks"
	GaugeShardBlockedMs     = "shard_blocked_ms"
)

// Result is a scenario run's uniform harvest: ordered event counters and
// ordered scalar gauges. Uniformity is the point — every scenario's
// outcome flows through the same two containers, so sweep folding,
// printing and regression comparison need no per-scenario structs.
type Result struct {
	Name     string
	Counters *stats.Counters
	Gauges   *stats.Gauges
	// Shards is the shard count the replica actually executed with: 1 for
	// a plain run, a silent fallback, or a tie-triggered rerun. It is
	// diagnostic only — by the determinism contract it never influences
	// any counter or gauge — so it lives outside the metric containers.
	Shards int
}

// Counter returns a counter's value (0 if the run never touched it).
func (r *Result) Counter(name string) uint64 { return r.Counters.Get(name) }

// Gauge returns a gauge's value (0 if the run never set it).
func (r *Result) Gauge(name string) float64 { return r.Gauges.Get(name) }

// CorruptMark prefixes payloads mangled by a corrupt fault, so sinks can
// tell leaked corruption from intact delivery.
const CorruptMark = "\x00corrupt\x00"

// SinkTally is the harvest-layer accounting for application sinks: every
// delivered payload is classified as intact or leaked corruption. The
// scenario Env carries one tally; sink components feed Deliver from their
// delivery upcalls and the runner folds the totals into the Result.
type SinkTally struct {
	Received int // intact deliveries
	Corrupt  int // corrupt-marked deliveries (faults that leaked through)
}

// Deliver classifies one sink-delivered payload. Only string payloads can
// carry the corrupt mark; any other payload type counts as intact.
func (t *SinkTally) Deliver(payload any) {
	if s, ok := payload.(string); ok && strings.HasPrefix(s, CorruptMark) {
		t.Corrupt++
		return
	}
	t.Received++
}
