package scenario

import (
	"innercircle/internal/geo"
	"innercircle/internal/mobility"
	"innercircle/internal/sim"
)

// Topology places the nodes and gives each one a mobility model.
type Topology interface {
	// Place draws the n node positions from rng — the scenario's
	// "placement" stream. Every random placement decision must come from
	// this rng, in node order, so a seed pins the deployment.
	Place(n int, rng *sim.RNG) []geo.Point
	// Model returns node i's mobility model. pos is the node's placed
	// position; rng is the node's private mobility stream (ignored by
	// static models).
	Model(i int, pos geo.Point, rng *sim.RNG) mobility.Model
}

// RandomWaypoint is the MANET deployment of the paper's Fig. 7 box:
// uniform placement over Region, random-waypoint motion between MinSpeed
// and MaxSpeed with the given pause time.
type RandomWaypoint struct {
	Region   geo.Rect     `json:"region"`
	MinSpeed float64      `json:"min_speed"`
	MaxSpeed float64      `json:"max_speed"`
	Pause    sim.Duration `json:"pause"`
}

// Place implements Topology.
func (t RandomWaypoint) Place(n int, rng *sim.RNG) []geo.Point {
	return mobility.UniformPlacement(t.Region, n, rng)
}

// Model implements Topology.
func (t RandomWaypoint) Model(_ int, pos geo.Point, rng *sim.RNG) mobility.Model {
	return mobility.NewWaypoint(mobility.WaypointConfig{
		Region:   t.Region,
		MinSpeed: t.MinSpeed,
		MaxSpeed: t.MaxSpeed,
		Pause:    t.Pause,
	}, pos, rng)
}

// BaseStationGrid is the static sensor deployment of the Fig. 8 box:
// node 0 is the base station at the region's centre; the remaining nodes
// sit on a jittered grid (or scattered uniformly — uniform deployments
// have thin patches, which matters for weak-signal miss alarms, §5.2).
type BaseStationGrid struct {
	Region geo.Rect `json:"region"`
	// GridJitter is the grid placement's jitter amplitude in metres.
	GridJitter float64 `json:"grid_jitter"`
	// Uniform scatters sensors uniformly instead of on the grid.
	Uniform bool `json:"uniform,omitempty"`
}

// Place implements Topology.
func (t BaseStationGrid) Place(n int, rng *sim.RNG) []geo.Point {
	positions := make([]geo.Point, n)
	positions[0] = t.Region.Center()
	var sensors []geo.Point
	if t.Uniform {
		sensors = mobility.UniformPlacement(t.Region, n-1, rng)
	} else {
		sensors = mobility.GridPlacement(t.Region, n-1, t.GridJitter, rng)
	}
	copy(positions[1:], sensors)
	return positions
}

// Model implements Topology.
func (t BaseStationGrid) Model(_ int, pos geo.Point, _ *sim.RNG) mobility.Model {
	return mobility.Static(pos)
}
