package scenario

import (
	"math"
	"os"
	"strconv"

	"innercircle/internal/geo"
	"innercircle/internal/mobility"
	"innercircle/internal/sim"
)

// ShardSafe marks adversaries whose Apply only mutates pre-run, per-node
// state (e.g. injecting measurement faults into sensing devices) and whose
// runtime effects stay on each node's home kernel. Adversaries without the
// marker — fault campaigns tap links and schedule kernel events of their
// own — force the replica back to a single shard.
type ShardSafe interface {
	ShardSafeAdversary()
}

// StripePartition divides a static deployment into vertical stripes of
// radio-grid cell columns, one contiguous run of columns per shard. The
// column width equals the radio range, so every stripe is at least one
// range wide: cross-stripe transmissions only ever reach the adjacent
// stripe (the shard set's neighbor topology), and any node that can hear
// across a boundary is within one range of it.
//
// It returns the owner and border classifiers plus the effective shard
// count, clamped to the number of occupied columns (a deployment narrower
// than two columns cannot be partitioned and yields shards == 1 with nil
// classifiers).
func StripePartition(positions []geo.Point, rangeM float64, shards int) (ownerOf func(geo.Point) int, borderOf func(geo.Point) bool, effective int) {
	if rangeM <= 0 || len(positions) == 0 || shards < 2 {
		return nil, nil, 1
	}
	minX, maxX := positions[0].X, positions[0].X
	for _, p := range positions[1:] {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
	}
	cmin := int(math.Floor(minX / rangeM))
	cmax := int(math.Floor(maxX / rangeM))
	cols := cmax - cmin + 1
	if shards > cols {
		shards = cols
	}
	if shards < 2 {
		return nil, nil, 1
	}
	ownerOf = func(p geo.Point) int {
		col := int(math.Floor(p.X / rangeM))
		if col < cmin {
			col = cmin
		}
		if col > cmax {
			col = cmax
		}
		// Distribute columns evenly; consecutive columns map to the same or
		// the next shard, so in-range traffic (|Δcol| <= 1) never skips a
		// shard.
		return (col - cmin) * shards / cols
	}
	borderOf = func(p geo.Point) bool {
		own := ownerOf(p)
		return ownerOf(geo.Point{X: p.X - rangeM, Y: p.Y}) != own ||
			ownerOf(geo.Point{X: p.X + rangeM, Y: p.Y}) != own
	}
	return ownerOf, borderOf, shards
}

// effectiveShards resolves the shard count a replica will attempt: the
// Spec's explicit Shards, else the IC_SHARDS environment knob, else 1 —
// then dropped back to 1 for replica shapes sharding cannot carry (a
// tracer's single ordered tap, a non-shard-capable traffic program, an
// adversary without the ShardSafe marker). Topology and geometry checks
// need the placed positions and happen later, in runOnce.
func effectiveShards(s *Spec) int {
	n := s.Shards
	if n == 0 {
		if v := os.Getenv("IC_SHARDS"); v != "" {
			if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
				n = parsed
			}
		}
	}
	if n < 2 {
		return 1
	}
	if s.Stack.Tracer != nil {
		return 1
	}
	if s.Traffic != nil {
		sc, ok := s.Traffic.(interface{ ShardCapable() bool })
		if !ok || !sc.ShardCapable() {
			return 1
		}
	}
	if s.Adversary != nil {
		if _, ok := s.Adversary.(ShardSafe); !ok {
			return 1
		}
	}
	return n
}

// staticTopology probes whether the topology yields static mobility. The
// probe model is built from a throwaway pure split, so it perturbs no
// replica stream.
func staticTopology(s *Spec, positions []geo.Point, seed *sim.RNG) bool {
	probe := s.Topology.Model(0, positions[0], seed.Split("shard-probe"))
	_, ok := probe.(mobility.Static)
	return ok
}
