package scenario

import (
	"fmt"
	"math"
	"os"
	"strconv"

	"innercircle/internal/geo"
	"innercircle/internal/mobility"
	"innercircle/internal/sim"
)

// ShardSafe marks adversaries whose Apply only mutates pre-run, per-node
// state (e.g. injecting measurement faults into sensing devices) and whose
// runtime effects stay on each node's home kernel. Adversaries without the
// marker — fault campaigns tap links and schedule kernel events of their
// own — force the replica back to a single shard.
type ShardSafe interface {
	ShardSafeAdversary()
}

// StripePartition divides a static deployment into vertical stripes of
// radio-grid cell columns, one contiguous run of columns per shard. The
// column width equals the radio range, so every stripe is at least one
// range wide: cross-stripe transmissions only ever reach the adjacent
// stripe (the shard set's neighbor topology), and any node that can hear
// across a boundary is within one range of it.
//
// Stripe boundaries are load-weighted: columns carry their node counts and
// each boundary is placed at the smallest column prefix whose weight
// reaches that shard's proportional share (smallest b with
// cum(b)·shards >= i·total), clamped so every shard keeps at least one
// column. Under density skew this caps the heaviest shard at
// total/shards + heaviest-column — the straggler that would otherwise gate
// every neighbor's horizon — while a deployment with exactly uniform
// per-column counts reproduces the legacy even-column-count boundaries
// bit for bit. IC_SHARD_PART=legacy pins the old even-column split; either
// way consecutive columns map to the same or the next shard (|Δcol| <= 1
// adjacency), and sweep results are partition-independent by the kernel's
// determinism contract.
//
// It returns the owner and border classifiers plus the effective shard
// count, clamped to the number of occupied columns (a deployment narrower
// than two columns cannot be partitioned and yields shards == 1 with nil
// classifiers).
func StripePartition(positions []geo.Point, rangeM float64, shards int) (ownerOf func(geo.Point) int, borderOf func(geo.Point) bool, effective int) {
	if rangeM <= 0 || len(positions) == 0 || shards < 2 {
		return nil, nil, 1
	}
	minX, maxX := positions[0].X, positions[0].X
	for _, p := range positions[1:] {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
	}
	cmin := int(math.Floor(minX / rangeM))
	cmax := int(math.Floor(maxX / rangeM))
	cols := cmax - cmin + 1
	if shards > cols {
		shards = cols
	}
	if shards < 2 {
		return nil, nil, 1
	}
	colOwner := make([]int, cols)
	if os.Getenv("IC_SHARD_PART") == "legacy" {
		for c := range colOwner {
			colOwner[c] = c * shards / cols
		}
	} else {
		// cum[b] is the node count of columns [0, b); boundary i is the
		// smallest b with cum[b]·shards >= i·total, kept within
		// [prev+1, cols-(shards-i)] so every shard owns >= 1 column. The
		// unclamped rule bounds every shard's load by total/shards +
		// max-column (the prefix overshoots its target by less than one
		// column); a binding clamp only ever pins single-column shards.
		cum := make([]int, cols+1)
		for _, p := range positions {
			col := int(math.Floor(p.X / rangeM))
			if col < cmin {
				col = cmin
			}
			if col > cmax {
				col = cmax
			}
			cum[col-cmin+1]++
		}
		for c := 0; c < cols; c++ {
			cum[c+1] += cum[c]
		}
		total := cum[cols]
		prev := 0
		for i := 1; i < shards; i++ {
			b := prev + 1
			for b < cols-(shards-i) && cum[b]*shards < i*total {
				b++
			}
			for c := prev; c < b; c++ {
				colOwner[c] = i - 1
			}
			prev = b
		}
		for c := prev; c < cols; c++ {
			colOwner[c] = shards - 1
		}
	}
	ownerOf = func(p geo.Point) int {
		col := int(math.Floor(p.X / rangeM))
		if col < cmin {
			col = cmin
		}
		if col > cmax {
			col = cmax
		}
		return colOwner[col-cmin]
	}
	borderOf = func(p geo.Point) bool {
		own := ownerOf(p)
		return ownerOf(geo.Point{X: p.X - rangeM, Y: p.Y}) != own ||
			ownerOf(geo.Point{X: p.X + rangeM, Y: p.Y}) != own
	}
	return ownerOf, borderOf, shards
}

// harvestShardStats folds the shard set's utilization records into the
// Result. The events-based gauges are deterministic (they depend only on
// the partition and the simulation); the wall-clock synchronization gauges
// vary run to run and are set only under IC_SHARD_STATS=1, which also
// prints the full per-shard table to stderr.
func harvestShardStats(res *Result, set *sim.ShardSet) {
	util := set.Utilization()
	minEv, maxEv := util[0].Events, util[0].Events
	var nulls, parks uint64
	var blockedNs int64
	for _, u := range util {
		if u.Events < minEv {
			minEv = u.Events
		}
		if u.Events > maxEv {
			maxEv = u.Events
		}
		nulls += u.NullRepublishes
		parks += u.Parks
		blockedNs += u.BlockedNs
	}
	res.Gauges.Set(GaugeShardEventsMin, float64(minEv))
	res.Gauges.Set(GaugeShardEventsMax, float64(maxEv))
	straggler := float64(maxEv)
	if minEv > 0 {
		straggler = float64(maxEv) / float64(minEv)
	}
	res.Gauges.Set(GaugeShardStraggler, straggler)
	if os.Getenv("IC_SHARD_STATS") != "1" {
		return
	}
	res.Gauges.Set(GaugeShardNullRepublish, float64(nulls))
	res.Gauges.Set(GaugeShardParks, float64(parks))
	res.Gauges.Set(GaugeShardBlockedMs, float64(blockedNs)/1e6)
	fmt.Fprintf(os.Stderr, "shardstats %s: shards=%d straggler=%.3f\n", res.Name, len(util), straggler)
	for i, u := range util {
		fmt.Fprintf(os.Stderr, "  shard %2d: events=%d null_republishes=%d parks=%d blocked_ms=%.2f\n",
			i, u.Events, u.NullRepublishes, u.Parks, float64(u.BlockedNs)/1e6)
	}
}

// effectiveShards resolves the shard count a replica will attempt: the
// Spec's explicit Shards, else the IC_SHARDS environment knob, else 1 —
// then dropped back to 1 for replica shapes sharding cannot carry (a
// tracer's single ordered tap, a non-shard-capable traffic program, an
// adversary without the ShardSafe marker). Topology and geometry checks
// need the placed positions and happen later, in runOnce.
func effectiveShards(s *Spec) int {
	n := s.Shards
	if n == 0 {
		if v := os.Getenv("IC_SHARDS"); v != "" {
			if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
				n = parsed
			}
		}
	}
	if n < 2 {
		return 1
	}
	if s.Stack.Tracer != nil {
		return 1
	}
	if s.Churn.active() {
		// Membership transitions swap every node's signer set at one
		// instant; only a single kernel can order that against traffic.
		return 1
	}
	if s.Traffic != nil {
		sc, ok := s.Traffic.(interface{ ShardCapable() bool })
		if !ok || !sc.ShardCapable() {
			return 1
		}
	}
	if s.Adversary != nil {
		if _, ok := s.Adversary.(ShardSafe); !ok {
			return 1
		}
	}
	return n
}

// staticTopology probes whether the topology yields static mobility. The
// probe model is built from a throwaway pure split, so it perturbs no
// replica stream.
func staticTopology(s *Spec, positions []geo.Point, seed *sim.RNG) bool {
	probe := s.Topology.Model(0, positions[0], seed.Split("shard-probe"))
	_, ok := probe.(mobility.Static)
	return ok
}
