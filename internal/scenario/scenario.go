// Package scenario is the declarative experiment layer: a Spec names a
// topology, a node stack, a traffic program and an adversary, and Run
// turns it into one deterministic replica — build, wire, inject, run,
// harvest — the exact sequence the hand-wired harnesses used to repeat.
//
// Determinism contract (the RNG-stream naming convention every scenario
// relies on): all replica randomness derives from sim.NewRNG(Spec.Seed)
// by pure label splits, so streams are independent and their creation
// order is free. The runner owns these labels:
//
//	"placement" — Topology.Place draws, in node order
//	"traffic"   — the traffic Program's draws (endpoints at Plan time,
//	              per-flow jitters at Start time)
//	"starts"    — jittered service starts, in node order
//	"faults"    — adversary streams (split off the root seed stream by
//	              faults.Apply; gray streams are SplitN("gray", i))
//	"node"/i    — per-node streams (split by node.Build; components split
//	              their per-node streams off nd.RNG, e.g. "aodv",
//	              "diffusion", "sensor")
//
// Only draw order within a stream and kernel event scheduling order are
// significant; both are fixed by Run's phase sequence below.
package scenario

import (
	"errors"
	"fmt"

	"innercircle/internal/energy"
	"innercircle/internal/faults"
	"innercircle/internal/geo"
	"innercircle/internal/link"
	"innercircle/internal/mac"
	"innercircle/internal/mobility"
	"innercircle/internal/node"
	"innercircle/internal/radio"
	"innercircle/internal/sim"
	"innercircle/internal/stats"
	"innercircle/internal/sts"
	"innercircle/internal/trace"
	"innercircle/internal/traffic"
	"innercircle/internal/vote"

	"innercircle/internal/crypto/nsl"
)

// Spec declares one simulation scenario. Specs are cheap values: sweeps
// construct one per replica and hand it to Run.
type Spec struct {
	Name    string
	Nodes   int
	Seed    int64
	SimTime sim.Time

	// Shards requests a partitioned replica (conservative-lookahead
	// parallel kernels; see sim.ShardSet). 0 defers to the IC_SHARDS
	// environment knob; 0 or 1 runs the plain single-kernel replica. The
	// runner silently falls back to one shard when the replica shape rules
	// sharding out (mobile topology, tracer, non-shard-capable traffic or
	// adversary, deployment narrower than two grid columns), and reruns
	// the replica unsharded when an ambiguous cross-shard timestamp tie
	// trips sim.ErrShardTie — results are identical at every shard count
	// either way.
	Shards int

	Topology  Topology
	Stack     Stack
	Traffic   traffic.Program // optional; nil runs protocol traffic only
	Adversary Adversary       // optional; nil runs a clean replica

	// Churn schedules mid-run membership transitions over the inner
	// circle (see Churn). Optional; nil runs a fixed-membership replica.
	// Active churn forces the replica onto a single kernel.
	Churn *Churn
}

// Stack assembles the per-node protocol stack: the node.Config layers
// plus the scenario's application components.
type Stack struct {
	Radio  radio.Params
	MAC    mac.Params
	Energy energy.Params

	// IC installs the inner-circle components; STS and Vote configure the
	// topology and voting services (see node.Config).
	IC   bool
	STS  sts.Config
	Vote vote.Config
	MaxL int

	// Keys optionally supplies pre-generated RSA key pairs (length Nodes).
	Keys []*nsl.KeyPair
	// SigWireBytes is the emulated signature wire size.
	SigWireBytes int
	// Tracer, when non-nil, taps all wire traffic. A tracer belongs to
	// exactly one replica.
	Tracer *trace.Tracer
	// STSStart controls topology-service startup.
	STSStart STSStart

	// Components are the scenario's application-layer parts, attached to
	// every node in order. A component may additionally implement
	// Registrar, Wirer, Starter, Harvester or Validator.
	Components []Component
}

// STSStart configures how the topology services start.
type STSStart struct {
	// Jitter, when positive, staggers each node's STS start uniformly in
	// [0, Jitter) — drawn from the "starts" stream in node order — to
	// avoid a synchronized beacon collision storm at t=0. Zero starts
	// every service synchronously before the first event.
	Jitter sim.Duration `json:"jitter,omitempty"`
}

// Component is a per-node application part of a scenario (a router, a
// sensing app). Attach is called for every node, in node order, after the
// network is built.
type Component interface {
	Attach(env *Env, nd *node.Node)
}

// Registrar components hook into node.Build's voting pass (IC mode): the
// returned callbacks become the node's vote callbacks, and the hook runs
// while the node is being assembled — the only point where application
// state can be closed over by the voting service. At most one component
// per Spec may implement Registrar, and it is only invoked when Stack.IC
// is set.
type Registrar interface {
	Register(env *Env, nd *node.Node) vote.Callbacks
}

// Wirer components get a once-per-replica hook right after the network is
// built, before any Attach call — the place to publish replica-wide
// wiring (the unicast send path, fault-control surfaces).
type Wirer interface {
	Wire(env *Env)
}

// Starter components schedule their startup events after the adversary is
// wired and the topology services are started, before the traffic plan.
type Starter interface {
	Start(env *Env)
}

// Harvester components fold their metrics into the Result after the run.
type Harvester interface {
	Harvest(env *Env, res *Result)
}

// Validator components veto invalid Specs (population floors, parameter
// gaps) before anything is built.
type Validator interface {
	Validate(s *Spec) error
}

// Resetter components drop all replica state at the start of each run
// attempt. A component holding harvest state across hooks must implement
// it if its Spec can run sharded: a sim.ErrShardTie abort reruns the same
// Spec — and the same component values — on a single kernel, and state
// from the abandoned attempt must not leak into the rerun.
type Resetter interface {
	Reset()
}

// Env is the replica context the runner threads through every hook.
type Env struct {
	Spec      *Spec
	Net       *node.Network
	Positions []geo.Point
	// Sink tallies application-sink deliveries; sink components feed it
	// and the runner folds it into the Result.
	Sink SinkTally

	seed      *sim.RNG
	unicast   func(src, dst int, payload any, sizeBytes int)
	routerCtl func(i int) faults.RouterCtl
	mutate    func(e link.Env, rng *sim.RNG) (link.Env, bool)
	err       error
}

// K returns the replica's simulation kernel.
func (e *Env) K() *sim.Kernel { return e.Net.K }

// SeedStream returns the named stream split off the scenario seed.
// Splits are pure, so components may call this at any time without
// perturbing other streams; draw order within the stream is what counts.
func (e *Env) SeedStream(label string) *sim.RNG { return e.seed.Split(label) }

// SetUnicast publishes the application send path traffic programs use.
func (e *Env) SetUnicast(fn func(src, dst int, payload any, sizeBytes int)) { e.unicast = fn }

// SetRouterCtl publishes the per-node routing attack surface for
// campaign adversaries. The accessor must return nil (an untyped nil) for
// nodes without a router.
func (e *Env) SetRouterCtl(fn func(i int) faults.RouterCtl) { e.routerCtl = fn }

// SetMutate publishes the payload-corruption hook campaign adversaries
// hand to the fault fabric.
func (e *Env) SetMutate(fn func(e link.Env, rng *sim.RNG) (link.Env, bool)) { e.mutate = fn }

// Fail records a component failure. Hooks without an error return
// (Register, Attach) report through it; the runner checks after each
// phase and aborts the replica.
func (e *Env) Fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// Validate checks the Spec's static shape: population and duration,
// required parts, component vetoes, and the traffic-reservation versus
// adversary-budget accounting over the node population.
func (s *Spec) Validate() error {
	if s.Nodes < 1 {
		return fmt.Errorf("scenario %q: need at least 1 node, got %d", s.Name, s.Nodes)
	}
	if s.SimTime <= 0 {
		return fmt.Errorf("scenario %q: need positive sim time, got %v", s.Name, s.SimTime)
	}
	if s.Topology == nil {
		return fmt.Errorf("scenario %q: topology required", s.Name)
	}
	if err := s.Churn.validate(s); err != nil {
		return fmt.Errorf("scenario %q: churn: %w", s.Name, err)
	}
	registrars := 0
	for _, c := range s.Stack.Components {
		if v, ok := c.(Validator); ok {
			if err := v.Validate(s); err != nil {
				return fmt.Errorf("scenario %q: %w", s.Name, err)
			}
		}
		if _, ok := c.(Registrar); ok {
			registrars++
		}
	}
	if registrars > 1 {
		return fmt.Errorf("scenario %q: at most one component may provide vote callbacks, got %d", s.Name, registrars)
	}
	reserved := 0
	if s.Traffic != nil {
		r, err := s.Traffic.Validate(s.Nodes)
		if err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		reserved = r
	}
	budget := 0
	if s.Adversary != nil {
		b, err := s.Adversary.Budget(s.Nodes)
		if err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		budget = b
	}
	if reserved+budget > s.Nodes {
		return fmt.Errorf("scenario %q: %d nodes cannot host %d traffic endpoints + %d adversary targets",
			s.Name, s.Nodes, reserved, budget)
	}
	return nil
}

// Run executes one replica of the scenario and returns its harvest.
//
// Phase order — load-bearing, because it fixes kernel event insertion
// order: validate, place, build (Registrar hooks fire inside the build's
// voting pass), wire, attach, plan traffic, apply the adversary, start
// the topology services, run component starters, start the traffic plan,
// drive the kernel, harvest.
//
// When the replica runs sharded and two shards produce bit-identical
// event timestamps — an ordering the conservative protocol cannot resolve
// against the sequential reference — the run fails with sim.ErrShardTie
// and is rerun on a single kernel, whose result is returned. Sharding
// therefore never changes results, only wall-clock time.
func Run(s *Spec) (*Result, error) {
	shards := effectiveShards(s)
	res, err := runOnce(s, shards)
	if shards > 1 && errors.Is(err, sim.ErrShardTie) {
		return runOnce(s, 1)
	}
	return res, err
}

// runOnce executes one replica attempt at the given shard count.
func runOnce(s *Spec, shards int) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	for _, c := range s.Stack.Components {
		if r, ok := c.(Resetter); ok {
			r.Reset()
		}
	}
	seed := sim.NewRNG(s.Seed)
	positions := s.Topology.Place(s.Nodes, seed.Split("placement"))
	if len(positions) != s.Nodes {
		return nil, fmt.Errorf("scenario %q: topology placed %d nodes, want %d", s.Name, len(positions), s.Nodes)
	}
	var shardOf func(geo.Point) int
	var shardBorder func(geo.Point) bool
	if shards > 1 {
		if !staticTopology(s, positions, seed) {
			shards = 1
		} else {
			shardOf, shardBorder, shards = StripePartition(positions, s.Stack.Radio.Range, shards)
		}
	}
	env := &Env{Spec: s, Positions: positions, seed: seed}

	var registrar Registrar
	for _, c := range s.Stack.Components {
		if r, ok := c.(Registrar); ok {
			registrar = r
		}
	}
	ncfg := node.Config{
		N:      s.Nodes,
		Seed:   s.Seed,
		Radio:  s.Stack.Radio,
		MAC:    s.Stack.MAC,
		Energy: s.Stack.Energy,
		Mobility: func(i int, rng *sim.RNG) mobility.Model {
			return s.Topology.Model(i, positions[i], rng)
		},
		IC:           s.Stack.IC,
		STS:          s.Stack.STS,
		Vote:         s.Stack.Vote,
		MaxL:         s.Stack.MaxL,
		Keys:         s.Stack.Keys,
		SigWireBytes: s.Stack.SigWireBytes,
		Tracer:       s.Stack.Tracer,
		Shards:       shards,
		ShardOf:      shardOf,
		ShardBorder:  shardBorder,
	}
	if s.Stack.IC && registrar != nil {
		ncfg.Callbacks = func(nd *node.Node) vote.Callbacks {
			return registrar.Register(env, nd)
		}
	}
	net, err := node.Build(ncfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: build: %w", s.Name, err)
	}
	env.Net = net
	if env.err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, env.err)
	}
	for _, c := range s.Stack.Components {
		if w, ok := c.(Wirer); ok {
			w.Wire(env)
		}
	}
	for _, c := range s.Stack.Components {
		for _, nd := range net.Nodes {
			c.Attach(env, nd)
		}
		if env.err != nil {
			return nil, fmt.Errorf("scenario %q: %w", s.Name, env.err)
		}
	}

	var plan traffic.Plan
	var order []int
	if s.Traffic != nil {
		tdeps := traffic.Deps{
			K:       net.K,
			RNG:     seed.Split("traffic"),
			N:       s.Nodes,
			End:     s.SimTime,
			Unicast: env.unicast,
		}
		if net.Set != nil {
			tdeps.Set = net.Set
			tdeps.NodeShard = func(i int) int { return shardOf(positions[i]) }
		}
		plan, err = s.Traffic.Plan(tdeps)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		if o, ok := plan.(traffic.Orderer); ok {
			order = o.Order()
		}
	}

	var coverage Harvester
	if s.Adversary != nil {
		coverage, err = s.Adversary.Apply(env, order)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}

	if s.Stack.STSStart.Jitter > 0 {
		net.StartSTSJittered(seed.Split("starts"), s.Stack.STSStart.Jitter)
	} else {
		net.StartSTS()
	}
	for _, c := range s.Stack.Components {
		if st, ok := c.(Starter); ok {
			st.Start(env)
		}
	}
	if plan != nil {
		plan.Start()
	}
	var churn *churnDriver
	if s.Churn.active() {
		churn, err = applyChurn(s.Churn, env)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: churn: %w", s.Name, err)
		}
	}

	if err := net.Run(s.SimTime); err != nil {
		return nil, fmt.Errorf("scenario %q: run: %w", s.Name, err)
	}

	res := &Result{Name: s.Name, Counters: stats.NewCounters(), Gauges: stats.NewGauges(), Shards: shards}
	sent := 0
	if sender, ok := plan.(traffic.Sender); ok {
		sent = sender.Sent()
	}
	res.Counters.Add(CtrSent, uint64(sent))
	res.Counters.Add(CtrReceived, uint64(env.Sink.Received))
	res.Counters.Add(CtrReceivedCorrupt, uint64(env.Sink.Corrupt))
	if sent > 0 {
		res.Gauges.Set(GaugeThroughputPct, 100*float64(env.Sink.Received)/float64(sent))
	}
	res.Gauges.Set(GaugeEnergyPerNodeJ, net.TotalEnergy()/float64(s.Nodes))
	if s.Stack.IC {
		var hits, misses uint64
		for _, nd := range net.Nodes {
			if nd.Vote != nil {
				hits += nd.Vote.Stats.MemoHits
				misses += nd.Vote.Stats.MemoMisses
			}
		}
		res.Counters.Add(CtrVoteMemoHits, hits)
		res.Counters.Add(CtrVoteMemoMisses, misses)
	}
	if churn != nil {
		churn.harvest(res)
	}
	if shards > 1 && net.Set != nil {
		harvestShardStats(res, net.Set)
	}
	for _, c := range s.Stack.Components {
		if h, ok := c.(Harvester); ok {
			h.Harvest(env, res)
		}
	}
	if coverage != nil {
		coverage.Harvest(env, res)
	}
	return res, nil
}
