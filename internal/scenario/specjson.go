// Spec JSON codec: the declarative subset of Spec round-trips through
// JSON as a tagged union, so experiment services can accept scenarios on
// the wire and manifests can record exactly what ran.
//
// The subset is honest about its limits. A Spec that carries live state —
// application Components, a Tracer, pre-generated Keys, or a traffic
// program with callback fields — is not data, and MarshalJSON refuses it
// rather than silently dropping the parts that don't fit. What remains
// (topology, stack parameters, CBR traffic, campaign adversaries) is the
// entire surface the paper-reproduction pipeline needs.
//
// Round-trip contract, pinned by TestSpecJSONRoundTrip: for a
// marshallable Spec, Marshal → Unmarshal → Marshal yields byte-identical
// output, and Unmarshal rejects unknown fields so schema drift fails
// loudly.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"

	"innercircle/internal/energy"
	"innercircle/internal/mac"
	"innercircle/internal/radio"
	"innercircle/internal/sim"
	"innercircle/internal/sts"
	"innercircle/internal/traffic"
	"innercircle/internal/vote"
)

// Wire-format kind tags.
const (
	topoRandomWaypoint  = "random_waypoint"
	topoBaseStationGrid = "base_station_grid"
	trafficCBR          = "cbr"
	adversaryCampaign   = "campaign"
)

// topologyJSON is the tagged union over the serializable topologies.
type topologyJSON struct {
	Kind            string           `json:"kind"`
	RandomWaypoint  *RandomWaypoint  `json:"random_waypoint,omitempty"`
	BaseStationGrid *BaseStationGrid `json:"base_station_grid,omitempty"`
}

// trafficJSON is the tagged union over the serializable traffic programs.
// Epochs is deliberately absent: its OnEpoch/OnNode callbacks are code,
// not data.
type trafficJSON struct {
	Kind string       `json:"kind"`
	CBR  *traffic.CBR `json:"cbr,omitempty"`
}

// adversaryJSON is the tagged union over the serializable adversaries.
type adversaryJSON struct {
	Kind     string             `json:"kind"`
	Campaign *CampaignAdversary `json:"campaign,omitempty"`
}

// stackJSON is Stack minus the three stateful fields (Keys, Tracer,
// Components) the codec refuses.
type stackJSON struct {
	Radio        radio.Params  `json:"radio"`
	MAC          mac.Params    `json:"mac"`
	Energy       energy.Params `json:"energy"`
	IC           bool          `json:"ic,omitempty"`
	STS          sts.Config    `json:"sts"`
	Vote         vote.Config   `json:"vote"`
	MaxL         int           `json:"max_l,omitempty"`
	SigWireBytes int           `json:"sig_wire_bytes,omitempty"`
	STSStart     STSStart      `json:"sts_start"`
}

// specJSON is the wire form of a Spec.
type specJSON struct {
	Name      string         `json:"name"`
	Nodes     int            `json:"nodes"`
	Seed      int64          `json:"seed"`
	SimTime   sim.Time       `json:"sim_time"`
	Shards    int            `json:"shards,omitempty"`
	Topology  *topologyJSON  `json:"topology,omitempty"`
	Stack     stackJSON      `json:"stack"`
	Traffic   *trafficJSON   `json:"traffic,omitempty"`
	Adversary *adversaryJSON `json:"adversary,omitempty"`
	Churn     *Churn         `json:"churn,omitempty"`
}

// MarshalJSON implements json.Marshaler over the declarative subset. It
// errors — rather than truncating — when the Spec carries state that
// cannot round-trip: components, a tracer, key material, or a topology,
// traffic program or adversary outside the serializable kinds.
func (s Spec) MarshalJSON() ([]byte, error) {
	if len(s.Stack.Components) > 0 {
		return nil, fmt.Errorf("scenario %q: spec with components is not serializable (components are code, not data)", s.Name)
	}
	if s.Stack.Tracer != nil {
		return nil, fmt.Errorf("scenario %q: spec with a tracer is not serializable", s.Name)
	}
	if s.Stack.Keys != nil {
		return nil, fmt.Errorf("scenario %q: spec with pre-generated keys is not serializable", s.Name)
	}
	out := specJSON{
		Name:    s.Name,
		Nodes:   s.Nodes,
		Seed:    s.Seed,
		SimTime: s.SimTime,
		Shards:  s.Shards,
		Stack: stackJSON{
			Radio:        s.Stack.Radio,
			MAC:          s.Stack.MAC,
			Energy:       s.Stack.Energy,
			IC:           s.Stack.IC,
			STS:          s.Stack.STS,
			Vote:         s.Stack.Vote,
			MaxL:         s.Stack.MaxL,
			SigWireBytes: s.Stack.SigWireBytes,
			STSStart:     s.Stack.STSStart,
		},
	}
	out.Churn = s.Churn
	switch t := s.Topology.(type) {
	case nil:
	case RandomWaypoint:
		out.Topology = &topologyJSON{Kind: topoRandomWaypoint, RandomWaypoint: &t}
	case BaseStationGrid:
		out.Topology = &topologyJSON{Kind: topoBaseStationGrid, BaseStationGrid: &t}
	default:
		return nil, fmt.Errorf("scenario %q: topology %T is not serializable", s.Name, s.Topology)
	}
	switch tr := s.Traffic.(type) {
	case nil:
	case *traffic.CBR:
		out.Traffic = &trafficJSON{Kind: trafficCBR, CBR: tr}
	default:
		return nil, fmt.Errorf("scenario %q: traffic program %T is not serializable (epoch programs carry callbacks)", s.Name, s.Traffic)
	}
	switch a := s.Adversary.(type) {
	case nil:
	case CampaignAdversary:
		out.Adversary = &adversaryJSON{Kind: adversaryCampaign, Campaign: &a}
	default:
		return nil, fmt.Errorf("scenario %q: adversary %T is not serializable", s.Name, s.Adversary)
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler, rejecting unknown fields at
// every nesting level and unions whose kind tag and payload disagree.
func (s *Spec) UnmarshalJSON(b []byte) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var in specJSON
	if err := dec.Decode(&in); err != nil {
		return fmt.Errorf("scenario: decoding spec: %w", err)
	}
	*s = Spec{
		Name:    in.Name,
		Nodes:   in.Nodes,
		Seed:    in.Seed,
		SimTime: in.SimTime,
		Shards:  in.Shards,
		Stack: Stack{
			Radio:        in.Stack.Radio,
			MAC:          in.Stack.MAC,
			Energy:       in.Stack.Energy,
			IC:           in.Stack.IC,
			STS:          in.Stack.STS,
			Vote:         in.Stack.Vote,
			MaxL:         in.Stack.MaxL,
			SigWireBytes: in.Stack.SigWireBytes,
			STSStart:     in.Stack.STSStart,
		},
		Churn: in.Churn,
	}
	if in.Topology != nil {
		switch in.Topology.Kind {
		case topoRandomWaypoint:
			if in.Topology.RandomWaypoint == nil {
				return fmt.Errorf("scenario %q: topology kind %q without payload", in.Name, in.Topology.Kind)
			}
			s.Topology = *in.Topology.RandomWaypoint
		case topoBaseStationGrid:
			if in.Topology.BaseStationGrid == nil {
				return fmt.Errorf("scenario %q: topology kind %q without payload", in.Name, in.Topology.Kind)
			}
			s.Topology = *in.Topology.BaseStationGrid
		default:
			return fmt.Errorf("scenario %q: unknown topology kind %q", in.Name, in.Topology.Kind)
		}
	}
	if in.Traffic != nil {
		switch in.Traffic.Kind {
		case trafficCBR:
			if in.Traffic.CBR == nil {
				return fmt.Errorf("scenario %q: traffic kind %q without payload", in.Name, in.Traffic.Kind)
			}
			s.Traffic = in.Traffic.CBR
		default:
			return fmt.Errorf("scenario %q: unknown traffic kind %q", in.Name, in.Traffic.Kind)
		}
	}
	if in.Adversary != nil {
		switch in.Adversary.Kind {
		case adversaryCampaign:
			if in.Adversary.Campaign == nil {
				return fmt.Errorf("scenario %q: adversary kind %q without payload", in.Name, in.Adversary.Kind)
			}
			s.Adversary = *in.Adversary.Campaign
		default:
			return fmt.Errorf("scenario %q: unknown adversary kind %q", in.Name, in.Adversary.Kind)
		}
	}
	return nil
}
