#!/usr/bin/env bash
# CI smoke for the experiment service: build icserved, start it on a
# scratch state dir, submit a tiny 2-point grid twice through the repro
# client (which follows the JSONL event stream until its terminal line),
# assert the second submission is a pure artifact-store hit, then SIGTERM
# the daemon and require a clean drain exit.
set -euo pipefail
cd "$(dirname "$0")/.."

port="${SMOKE_PORT:-18473}"
work="$(mktemp -d)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/icserved" ./cmd/icserved

"$work/icserved" -addr "127.0.0.1:$port" -dir "$work/state" &
pid=$!

for _ in $(seq 1 100); do
    if curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "icserved exited before becoming healthy" >&2
        exit 1
    fi
    sleep 0.1
done
curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null

go run ./scripts/repro -addr "http://127.0.0.1:$port" -smoke

kill -TERM "$pid"
if ! wait "$pid"; then
    echo "icserved did not drain cleanly on SIGTERM" >&2
    exit 1
fi
pid=""
echo "ci_smoke: ok"
