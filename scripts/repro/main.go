// Command repro is the paper-reproduction driver and analyzer: one
// invocation submits the full paper grid — Fig. 7 (blackhole sweep),
// Fig. 8 (sensor fault sweep) and the fault-campaign coverage sweep — to
// a running icserved, follows each job's JSONL progress, and emits the
// grouped summary tables and long-form CSVs for every figure, all rebuilt
// by the service from the content-addressed artifact store only.
//
// Usage:
//
//	icserved -addr :8080 -dir state &          # the service
//	go run ./scripts/repro -addr http://127.0.0.1:8080 -out repro-out
//
// Grids mirror the cmd/ drivers' defaults (and their -quick shapes under
// -quick), so the tables written here are byte-identical to what
// cmd/blackhole, cmd/sensornet and cmd/faultsweep print — that equality
// is pinned by the internal/serve tests. A second run of the driver is a
// pure artifact-store read: every replica dedups against its manifest.
//
// Per figure, -out receives <name>.txt (rendered tables), <name>.csv
// (long form: row,col,n,mean,ci95) and <name>.manifest.json (provenance:
// grid spec hash, tables hash, git revision, IC_* knobs, wall clock).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	ic "innercircle"
	"innercircle/internal/cliutil"
	"innercircle/internal/experiment"
	"innercircle/internal/serve"
)

// figures assembles the paper grid set.
func figures(seed int64, runs int, quick bool) ([]*experiment.GridRequest, error) {
	bh := ic.PaperBlackholeConfig()
	bh.Seed = seed
	counts := []int{0, 2, 4, 6, 8, 10}
	bhLevels := []int{1, 2}
	bhRuns := runs
	sn := ic.PaperSensorConfig()
	sn.Seed = seed
	snLevels := []int{2, 3, 4, 5, 6, 7}
	kinds := ic.AllFaultKinds()
	snRuns := runs
	campaignSpecs := []string{
		"clean", "blackhole:3", "grayhole:3:0.5", "drop:3:0.5",
		"corrupt:3:0.25", "spoof:3", "churn:3:30:10", "byzantine:3",
	}
	cpLevels := []int{1, 2}
	cpRuns := runs
	if quick {
		bh.SimTime = 60
		counts = []int{0, 2, 6, 10}
		bhLevels = []int{1}
		bhRuns = 2
		snLevels = []int{3, 5}
		kinds = []ic.FaultKind{ic.FaultNone, ic.FaultInterference}
		snRuns = 2
		campaignSpecs = []string{"clean", "blackhole:3"}
		cpLevels = []int{1}
		cpRuns = 2
	}
	var campaigns []ic.Campaign
	for _, spec := range campaignSpecs {
		c, err := ic.ParsePreset(spec)
		if err != nil {
			return nil, err
		}
		campaigns = append(campaigns, c)
	}
	return []*experiment.GridRequest{
		{Name: "fig7-blackhole", Kind: experiment.GridBlackhole,
			Blackhole: &bh, Malicious: counts, Levels: bhLevels, Runs: bhRuns},
		{Name: "fig8-sensor", Kind: experiment.GridSensor,
			Sensor: &sn, Levels: snLevels, Faults: kinds, Runs: snRuns},
		{Name: "campaign-coverage", Kind: experiment.GridCampaign,
			Blackhole: &bh, Campaigns: campaigns, Levels: cpLevels, Runs: cpRuns},
	}, nil
}

func run() error {
	var (
		addr  = flag.String("addr", "http://127.0.0.1:8080", "icserved base URL")
		out   = flag.String("out", "repro-out", "output directory for tables, CSVs and manifests")
		runs  = flag.Int("runs", 5, "simulation runs per data point (the paper uses 50)")
		seed  = flag.Int64("seed", 1, "base seed")
		quick = flag.Bool("quick", false, "reduced grids for a fast preview (mirrors the CLIs' -quick)")
		quiet = flag.Bool("quiet", false, "suppress per-replica progress")
		smoke = flag.Bool("smoke", false, "CI smoke: submit a 2-point grid twice, assert the rerun dedups against the store")
	)
	flag.Parse()

	if *smoke {
		return runSmoke(*addr, *seed)
	}

	grids, err := figures(*seed, *runs, *quick)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	c := &serve.Client{Base: *addr}
	ctx := context.Background()

	type outcome struct {
		job    serve.JobInfo
		tables string
	}
	outcomes := make([]outcome, 0, len(grids))
	for _, g := range grids {
		job, err := c.Submit(ctx, g)
		if err != nil {
			return fmt.Errorf("submitting %s: %w", g.Name, err)
		}
		fmt.Fprintf(os.Stderr, "repro: %s queued as %s (%d replicas)\n", g.Name, job.ID, job.Total)
		job, err = c.Wait(ctx, job.ID, func(e serve.Event) {
			if *quiet || e.Type != "point" {
				return
			}
			mark := ""
			if e.FromCache {
				mark = " (store)"
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s%s\n", e.Done, e.Total, e.Label, mark)
		})
		if err != nil {
			return fmt.Errorf("waiting for %s: %w", g.Name, err)
		}
		if job.State != serve.JobDone {
			return fmt.Errorf("job %s (%s) ended %s: %s", job.ID, g.Name, job.State, job.Error)
		}
		tables, err := c.Tables(ctx, job.ID)
		if err != nil {
			return err
		}
		csv, err := c.TablesCSV(ctx, job.ID)
		if err != nil {
			return err
		}
		manifest, err := c.Manifest(ctx, job.ID)
		if err != nil {
			return err
		}
		for _, f := range []struct{ suffix, content string }{
			{".txt", tables}, {".csv", csv}, {".manifest.json", string(manifest) + "\n"},
		} {
			if err := os.WriteFile(filepath.Join(*out, g.Name+f.suffix), []byte(f.content), 0o644); err != nil {
				return err
			}
		}
		outcomes = append(outcomes, outcome{job: job, tables: tables})
	}

	for i, g := range grids {
		fmt.Printf("==== %s ====\n\n%s", g.Name, outcomes[i].tables)
	}
	fmt.Println("==== summary ====")
	for i, g := range grids {
		j := outcomes[i].job
		fmt.Printf("%-20s job=%s replicas=%d computed=%d cached=%d tables=%s\n",
			g.Name, j.ID, j.Total, j.Computed, j.Cached, j.TablesSHA256[:12])
	}
	fmt.Printf("outputs in %s\n", *out)
	return nil
}

// runSmoke is the CI smoke path: one tiny 2-point grid, submitted twice.
// It asserts the whole service loop — submission, JSONL progress that
// terminates, table rendering — and that the second, identical submission
// is a pure artifact-store hit with zero recomputed replicas.
func runSmoke(addr string, seed int64) error {
	cfg := ic.PaperBlackholeConfig()
	cfg.Nodes = 30
	cfg.SimTime = 20
	cfg.Seed = seed
	grid := func() *experiment.GridRequest {
		g := cfg
		return &experiment.GridRequest{Name: "smoke", Kind: experiment.GridBlackhole,
			Blackhole: &g, Malicious: []int{0}, Levels: []int{1}, Runs: 1}
	}
	c := &serve.Client{Base: addr}
	ctx := context.Background()

	submit := func() (serve.JobInfo, error) {
		job, err := c.Submit(ctx, grid())
		if err != nil {
			return serve.JobInfo{}, err
		}
		// Wait follows the JSONL stream and errors unless it terminates
		// with an "end" line — the stream-termination assertion.
		job, err = c.Wait(ctx, job.ID, func(e serve.Event) {
			if e.Type == "point" {
				fmt.Fprintf(os.Stderr, "smoke: [%d/%d] %s cache=%v\n", e.Done, e.Total, e.Label, e.FromCache)
			}
		})
		if err != nil {
			return serve.JobInfo{}, err
		}
		if job.State != serve.JobDone {
			return serve.JobInfo{}, fmt.Errorf("smoke job ended %s: %s", job.State, job.Error)
		}
		return job, nil
	}
	first, err := submit()
	if err != nil {
		return err
	}
	if first.Total != 2 {
		return fmt.Errorf("smoke grid has %d points, want 2", first.Total)
	}
	second, err := submit()
	if err != nil {
		return err
	}
	if second.Computed != 0 || second.Cached != 2 {
		return fmt.Errorf("rerun computed=%d cached=%d, want 0/2 (dedup failed)", second.Computed, second.Cached)
	}
	if first.TablesSHA256 != second.TablesSHA256 {
		return fmt.Errorf("rerun tables hash %s != first %s", second.TablesSHA256, first.TablesSHA256)
	}
	fmt.Printf("smoke ok: 2 points computed once, rerun fully cached, tables %s\n", first.TablesSHA256[:12])
	return nil
}

func main() { cliutil.Main("repro", run) }
