// Command bench_diff compares two benchmark result files and prints
// per-benchmark deltas. It reads either of the repo's two formats:
//
//   - BENCH_*.json artifacts: every numeric leaf whose key starts with
//     "ns_op" is collected under its dotted JSON path;
//   - raw `go test -bench` output: every "BenchmarkX  N  t ns/op" line is
//     collected under its benchmark name.
//
// With -threshold P (percent), the exit status is 1 when any benchmark
// present in both files regressed (new slower than old) by more than P% —
// the CI smoke guard runs the kernel bench under both queue
// implementations and fails the build on a >25% regression.
//
// Usage:
//
//	bench_diff [-threshold pct] old.(json|txt) new.(json|txt)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// collectJSON walks v, appending every numeric leaf reached through a key
// starting with "ns_op" to out under its dotted path.
func collectJSON(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			path := k
			if prefix != "" {
				path = prefix + "." + k
			}
			if f, ok := x[k].(float64); ok && strings.HasPrefix(k, "ns_op") {
				// The leaf path reads better without the metric key itself
				// when it is the conventional one.
				if k == "ns_op_min" || k == "ns_op" {
					path = prefix
				}
				out[path] = f
				continue
			}
			collectJSON(path, x[k], out)
		}
	case []any:
		for i, e := range x {
			collectJSON(fmt.Sprintf("%s[%d]", prefix, i), e, out)
		}
	}
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op`)

// parseBenchText collects "Benchmark...  N  t ns/op" lines. A benchmark
// appearing multiple times (-count>1) keeps its minimum, matching the
// min-over-runs convention of the BENCH_*.json artifacts.
func parseBenchText(data []byte) map[string]float64 {
	out := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if old, ok := out[m[1]]; !ok || v < old {
			out[m[1]] = v
		}
	}
	return out
}

// load reads path and extracts its benchmark values by format sniff.
func load(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") || strings.HasPrefix(trimmed, "[") {
		var v any
		if err := json.Unmarshal(data, &v); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out := map[string]float64{}
		collectJSON("", v, out)
		return out, nil
	}
	return parseBenchText(data), nil
}

// diff renders the comparison and reports whether any shared benchmark
// regressed beyond threshold percent (threshold < 0 disables the check).
func diff(w *bufio.Writer, old, new map[string]float64, threshold float64) (regressed bool) {
	keys := make([]string, 0, len(old))
	for k := range old {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ov := old[k]
		nv, ok := new[k]
		if !ok {
			fmt.Fprintf(w, "%-60s %14.0f  (missing in new)\n", k, ov)
			continue
		}
		delta := (nv - ov) / ov * 100
		mark := ""
		if threshold >= 0 && delta > threshold {
			mark = "  REGRESSION"
			regressed = true
		}
		fmt.Fprintf(w, "%-60s %14.0f -> %14.0f  %+7.2f%%%s\n", k, ov, nv, delta, mark)
	}
	extra := make([]string, 0)
	for k := range new {
		if _, ok := old[k]; !ok {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	for _, k := range extra {
		fmt.Fprintf(w, "%-60s %14s -> %14.0f  (missing in old)\n", k, "-", new[k])
	}
	return regressed
}

func main() {
	threshold := flag.Float64("threshold", -1, "fail (exit 1) when any benchmark regresses by more than this percent; negative disables")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: bench_diff [-threshold pct] old.(json|txt) new.(json|txt)")
		os.Exit(2)
	}
	oldVals, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_diff:", err)
		os.Exit(2)
	}
	newVals, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_diff:", err)
		os.Exit(2)
	}
	if len(oldVals) == 0 || len(newVals) == 0 {
		fmt.Fprintln(os.Stderr, "bench_diff: no benchmark values found in one of the inputs")
		os.Exit(2)
	}
	w := bufio.NewWriter(os.Stdout)
	regressed := diff(w, oldVals, newVals, *threshold)
	w.Flush()
	if regressed {
		fmt.Fprintf(os.Stderr, "bench_diff: regression beyond %.1f%% threshold\n", *threshold)
		os.Exit(1)
	}
}
