package main

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

func TestCollectJSON(t *testing.T) {
	var v any
	blob := `{"results": {"nodes=1000": {"procs=1": {
		"seq": {"ns_op_min": 100, "runs": 3},
		"par": {"ns_op_min": 200, "runs": 3}
	}}}}`
	if err := json.Unmarshal([]byte(blob), &v); err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	collectJSON("", v, out)
	if len(out) != 2 {
		t.Fatalf("collected %v, want 2 entries", out)
	}
	if out["results.nodes=1000.procs=1.seq"] != 100 {
		t.Fatalf("seq leaf = %v", out)
	}
	if out["results.nodes=1000.procs=1.par"] != 200 {
		t.Fatalf("par leaf = %v", out)
	}
}

func TestParseBenchText(t *testing.T) {
	text := `goos: linux
BenchmarkKernelSchedule/fire/wheel-4         	12345678	        35.53 ns/op	       0 B/op
BenchmarkKernelSchedule/fire/wheel-4         	12345678	        33.10 ns/op	       0 B/op
BenchmarkKernelSchedule/fire/heap            	10000000	       103.6 ns/op
PASS
`
	out := parseBenchText([]byte(text))
	if len(out) != 2 {
		t.Fatalf("parsed %v, want 2 benchmarks", out)
	}
	if out["BenchmarkKernelSchedule/fire/wheel"] != 33.10 {
		t.Fatalf("repeated benchmark did not keep the minimum: %v", out)
	}
	if out["BenchmarkKernelSchedule/fire/heap"] != 103.6 {
		t.Fatalf("heap row = %v", out)
	}
}

func TestDiffThreshold(t *testing.T) {
	old := map[string]float64{"a": 100, "b": 100, "gone": 5}
	new := map[string]float64{"a": 110, "b": 130, "fresh": 7}
	var sb strings.Builder
	w := bufio.NewWriter(&sb)
	if regressed := diff(w, old, new, 25); !regressed {
		t.Fatal("30% regression on b not flagged at threshold 25")
	}
	w.Flush()
	for _, want := range []string{"REGRESSION", "missing in new", "missing in old", "+10.00%"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, sb.String())
		}
	}
	sb.Reset()
	w = bufio.NewWriter(&sb)
	if regressed := diff(w, old, new, -1); regressed {
		t.Fatal("disabled threshold still flagged a regression")
	}
	sb.Reset()
	w = bufio.NewWriter(&sb)
	if regressed := diff(w, old, map[string]float64{"a": 90, "b": 95}, 25); regressed {
		t.Fatal("improvement flagged as regression")
	}
}
