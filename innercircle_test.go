package innercircle_test

import (
	"math"
	"testing"

	ic "innercircle"
)

// TestPublicFusionAPI exercises the §4.3 algorithms through the facade.
func TestPublicFusionAPI(t *testing.T) {
	obs := []ic.Vec{{1, 1}, {1.2, 0.9}, {0.8, 1.1}, {40, 40}}
	res, err := ic.FTCluster(obs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 1 || res.Removed[0] != 3 {
		t.Fatalf("Removed = %v, want the outlier", res.Removed)
	}
	m, err := ic.FTMean([]ic.Vec{{1}, {2}, {3}, {100}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m[0]-2.5) > 1e-9 {
		t.Fatalf("FTMean = %v", m)
	}
	if e := ic.WorstCaseError(3, 9, 1); math.Abs(e-1) > 1e-9 {
		t.Fatalf("WorstCaseError(N/3) = %v, want deltaC", e)
	}
	target := ic.Point{X: 5, Y: 7}
	a1, a2, a3 := ic.Point{}, ic.Point{X: 10}, ic.Point{Y: 10}
	got, err := ic.Trilaterate(a1, a2, a3, target.Dist(a1), target.Dist(a2), target.Dist(a3))
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist(target) > 1e-6 {
		t.Fatalf("Trilaterate = %v", got)
	}
}

// TestPublicThresholdAPI deals a ring and round-trips a signature.
func TestPublicThresholdAPI(t *testing.T) {
	ring, keys, err := ic.DealRing(ic.NewSimDealer([]byte("facade"), 128), 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	gk := ring[2] // L = 2: three partials needed
	msg := []byte("agreed value")
	var partials []ic.Partial
	for i := 0; i < 3; i++ {
		p, err := keys[i][2].PartialSign(msg)
		if err != nil {
			t.Fatal(err)
		}
		partials = append(partials, p)
	}
	sig, err := gk.Combine(msg, partials)
	if err != nil {
		t.Fatal(err)
	}
	if err := gk.Verify(msg, sig); err != nil {
		t.Fatal(err)
	}
	if err := gk.Verify([]byte("other"), sig); err == nil {
		t.Fatal("signature verified for wrong message")
	}
}

// TestPublicNetworkAPI builds an IC network purely through the facade and
// completes a deterministic voting round.
func TestPublicNetworkAPI(t *testing.T) {
	positions := []ic.Point{{X: 0}, {X: 100}, {X: 200}, {X: 100, Y: 100}}
	agreed := 0
	stsCfg := ic.DefaultSTS()
	stsCfg.Handshake = false
	cfg := ic.NetworkConfig{
		N:      4,
		Seed:   42,
		Radio:  ic.Default80211Radio(),
		MAC:    ic.DefaultMAC(),
		Energy: ic.NS2Energy(),
		Mobility: func(i int, _ *ic.RNG) ic.MobilityModel {
			return ic.Static(positions[i])
		},
		IC:   true,
		STS:  stsCfg,
		Vote: ic.VoteConfig{Mode: ic.Deterministic, L: 1, RoundTimeout: 0.2, Retries: 1},
		Callbacks: func(n *ic.Node) ic.VoteCallbacks {
			return ic.VoteCallbacks{
				Check:    func(center ic.NodeID, value []byte) bool { return string(value) != "bad" },
				OnAgreed: func(ic.AgreedMsg) { agreed++ },
			}
		},
	}
	net, err := ic.BuildNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.StartSTS()
	if err := net.Run(4); err != nil {
		t.Fatal(err)
	}
	if err := net.Nodes[1].Vote.Propose([]byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(6); err != nil {
		t.Fatal(err)
	}
	if agreed == 0 {
		t.Fatal("no agreement through the public API")
	}
	if net.TotalEnergy() <= 0 {
		t.Fatal("no energy accounted")
	}
}

// TestPublicExperimentAPI runs reduced paper scenarios via the facade.
func TestPublicExperimentAPI(t *testing.T) {
	bh := ic.PaperBlackholeConfig()
	bh.Nodes = 25
	bh.SimTime = 30
	bh.Seed = 2
	res, err := ic.RunBlackhole(bh)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Fatal("no traffic generated")
	}

	sn := ic.PaperSensorConfig()
	sn.SimTime = 100
	sn.Seed = 2
	sres, err := ic.RunSensor(sn)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Targets != 1 {
		t.Fatalf("targets = %d, want 1 in 100 s", sres.Targets)
	}
	if len(ic.AllFaultKinds()) != 5 {
		t.Fatal("fault kinds incomplete")
	}
}

// TestPaperConfigsMatchParameterBoxes pins the headline constants to the
// paper's simulation-parameter boxes.
func TestPaperConfigsMatchParameterBoxes(t *testing.T) {
	bh := ic.PaperBlackholeConfig()
	if bh.Nodes != 50 || bh.Region != 1000 || bh.Connections != 10 ||
		bh.Rate != 4 || bh.PacketBytes != 512 || bh.SimTime != 300 || bh.Speed != 10 {
		t.Fatalf("black-hole config drifted from the Fig. 7 box: %+v", bh)
	}
	sn := ic.PaperSensorConfig()
	if sn.Nodes != 100 || sn.Region != 200 || sn.Range != 40 || sn.SimTime != 200 ||
		sn.SensePeriod != 5 || sn.Faulty != 10 || sn.Model.KT != 20000 {
		t.Fatalf("sensor config drifted from the Fig. 8 box: %+v", sn)
	}
	if math.Abs(sn.Lambda-6.635) > 1e-9 {
		t.Fatalf("lambda = %v, want 6.635", sn.Lambda)
	}
	if sn.FaultParams.Eclbr != 2 || sn.FaultParams.Eintf != 10 {
		t.Fatalf("fault params drifted: %+v", sn.FaultParams)
	}
	e := ic.NS2Energy()
	if e.TxPower != 0.660 || e.RxPower != 0.395 || e.IdlePower != 0.035 {
		t.Fatalf("energy params drifted: %+v", e)
	}
}
