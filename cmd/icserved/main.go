// Command icserved is the long-running experiment service: it accepts
// JSON experiment grids over HTTP, fans their replicas onto the worker
// pool under the core-token budget, persists every replica result in a
// content-addressed artifact store, and serves the rebuilt figure tables
// — byte-identical to the corresponding CLI drivers' output.
//
// Usage:
//
//	icserved [-addr :8080] [-dir icserved-state] [-parallel 1] [-queue 64]
//
// Endpoints (see internal/serve):
//
//	POST /jobs                  submit a grid (experiment.GridRequest JSON)
//	GET  /jobs                  list jobs
//	GET  /jobs/{id}             job record
//	GET  /jobs/{id}/events      JSONL progress, follows until terminal
//	GET  /jobs/{id}/tables      rendered tables (CLI-identical text)
//	GET  /jobs/{id}/tables.csv  long-form CSV
//	GET  /jobs/{id}/manifest    run manifest (provenance)
//	GET  /artifacts/{digest}    raw result bytes
//	GET  /healthz               liveness probe
//
// On SIGTERM/SIGINT the service drains: in-flight replicas finish and
// persist, interrupted jobs return to the queue, and the next start
// resumes them — replicas already in the store are never recomputed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"innercircle/internal/cliutil"
	"innercircle/internal/serve"
)

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		dir      = flag.String("dir", "icserved-state", "state directory (artifact store + job records)")
		parallel = flag.Int("parallel", 1, "jobs run concurrently (replicas within a job always use the worker pool)")
		queueCap = flag.Int("queue", 64, "bounded job-queue capacity")
	)
	applyShards := cliutil.AddShardsFlag(flag.CommandLine)
	applyQueue := cliutil.AddQueueFlag(flag.CommandLine)
	flag.Parse()
	if err := applyShards(); err != nil {
		return err
	}
	if err := applyQueue(); err != nil {
		return err
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, time.Now().UTC().Format("2006-01-02T15:04:05Z")+" "+format+"\n", args...)
	}
	srv, err := serve.New(serve.Options{Dir: *dir, Parallel: *parallel, QueueCap: *queueCap, Logf: logf})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() {
		logf("icserved: listening on %s, state in %s", *addr, *dir)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			httpErr <- err
		}
	}()

	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		srv.Run(ctx)
	}()

	select {
	case err := <-httpErr:
		stop()
		<-runDone
		return err
	case <-ctx.Done():
	}
	logf("icserved: draining (in-flight replicas finish, queued jobs persist)")
	<-runDone
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutCtx)
	logf("icserved: stopped")
	return nil
}

func main() { cliutil.Main("icserved", run) }
