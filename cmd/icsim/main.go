// Command icsim is a general-purpose scenario driver for the inner-circle
// AODV network: configure scale, mobility, attack and defense from flags,
// run one simulation, and get delivery/energy results plus a wire-level
// traffic breakdown by message type — the quickest way to see where an
// inner-circle deployment spends its bytes.
//
// Usage:
//
//	icsim [-nodes 50] [-region 1000] [-speed 10] [-time 120]
//	      [-attackers 0] [-gray 0] [-ic] [-L 1] [-seed 1] [-trace 0]
package main

import (
	"flag"
	"fmt"
	"os"

	ic "innercircle"
	"innercircle/internal/cliutil"
)

func run() error {
	var (
		nodes     = flag.Int("nodes", 50, "number of nodes")
		region    = flag.Float64("region", 1000, "square region side, metres")
		speed     = flag.Float64("speed", 10, "random waypoint speed, m/s (0 = static grid)")
		simTime   = flag.Float64("time", 120, "simulated seconds")
		attackers = flag.Int("attackers", 0, "black/gray hole count")
		gray      = flag.Float64("gray", 0, "gray-hole probability (0 = full black holes)")
		icOn      = flag.Bool("ic", false, "enable the inner-circle defense")
		level     = flag.Int("L", 1, "dependability level")
		seed      = flag.Int64("seed", 1, "seed")
		traceN    = flag.Int("trace", 0, "print the last N wire events")
		prof      = cliutil.AddProfileFlags(flag.CommandLine)
	)
	applyShards := cliutil.AddShardsFlag(flag.CommandLine)
	applyQueue := cliutil.AddQueueFlag(flag.CommandLine)
	flag.Parse()
	if err := applyShards(); err != nil {
		return err
	}
	if err := applyQueue(); err != nil {
		return err
	}

	stop, err := prof.Start()
	if err != nil {
		return err
	}
	defer stop()

	cfg := ic.PaperBlackholeConfig()
	cfg.Nodes = *nodes
	cfg.Region = *region
	cfg.Speed = *speed
	cfg.SimTime = ic.Time(*simTime)
	cfg.Malicious = *attackers
	cfg.GrayProb = *gray
	cfg.IC = *icOn
	cfg.L = *level
	cfg.Seed = *seed

	res, err := ic.RunBlackhole(cfg)
	if err != nil {
		return err
	}
	mode := "plain AODV"
	if *icOn {
		mode = fmt.Sprintf("inner-circle AODV (L=%d)", *level)
	}
	fmt.Printf("scenario: %d nodes on %.0fx%.0f m², %s, %d attackers", *nodes, *region, *region, mode, *attackers)
	if *gray > 0 {
		fmt.Printf(" (gray, p=%.2f)", *gray)
	}
	fmt.Printf(", %v\n", cfg.SimTime)
	fmt.Printf("throughput: %.1f%% (%d/%d packets)\n", res.Throughput, res.Received, res.Sent)
	fmt.Printf("energy:     %.2f J/node\n", res.EnergyPerNode)

	if *traceN > 0 {
		// Re-run the identical scenario with a tracer attached for the
		// traffic breakdown (the run above used the library's fast path).
		tr := ic.NewTracer(*traceN)
		tres, err := runTraced(cfg, tr)
		if err != nil {
			return err
		}
		_ = tres
		fmt.Println("\ntraffic breakdown (transmissions):")
		tr.WriteSummary(os.Stdout)
		fmt.Printf("\nlast %d wire events:\n", *traceN)
		tr.WriteEvents(os.Stdout)
	}
	return nil
}

// runTraced repeats the scenario with wire tracing. The experiment harness
// does not take a tracer (it is the hot path), so this builds the same
// network through the public facade.
func runTraced(cfg ic.BlackholeConfig, tr *ic.Tracer) (ic.BlackholeResult, error) {
	cfg.Tracer = tr
	return ic.RunBlackhole(cfg)
}

func main() {
	cliutil.Main("icsim", run)
}
