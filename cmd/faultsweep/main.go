// Command faultsweep sweeps fault/attack campaigns over the Fig. 7
// network and reports throughput, energy, and the neutralization-coverage
// counters (faults injected / suppressed by the inner circle / leaked to
// the application).
//
// Usage:
//
//	faultsweep [-campaign a.json,b.json] [-preset spec,spec,...]
//	           [-runs N] [-seed S] [-time T] [-nodes N] [-levels 1,2]
//	           [-quiet]
//
// Campaigns come from JSON files (-campaign, see README for the schema),
// from preset shorthands (-preset, e.g. blackhole:3 grayhole:3:0.5
// corrupt:3:0.25 spoof:3 churn:3:30:10 byzantine:3 drop:3:0.3 clean), or,
// when neither flag is given, from a built-in demonstration set covering
// every fault class. Same seed and campaign produce byte-identical tables
// at any IC_WORKERS setting.
package main

import (
	"flag"
	"fmt"
	"os"

	ic "innercircle"
	"innercircle/internal/cliutil"
	"innercircle/internal/experiment"
)

func run() error {
	var (
		campaignCSV = flag.String("campaign", "", "comma-separated campaign JSON files")
		presetCSV   = flag.String("preset", "", "comma-separated preset specs (see package doc)")
		runs        = flag.Int("runs", 5, "simulation runs per cell")
		seed        = flag.Int64("seed", 1, "base seed")
		simTime     = flag.Float64("time", 300, "simulated seconds per run")
		nodes       = flag.Int("nodes", 50, "network size")
		conns       = flag.Int("conns", 10, "CBR connections (count-selected attackers come from the remaining nodes)")
		levelsCSV   = flag.String("levels", "1,2", "comma-separated dependability levels")
		quiet       = flag.Bool("quiet", false, "suppress per-run progress")
		prof        = cliutil.AddProfileFlags(flag.CommandLine)
	)
	applyShards := cliutil.AddShardsFlag(flag.CommandLine)
	applyQueue := cliutil.AddQueueFlag(flag.CommandLine)
	applyShardStats := cliutil.AddShardStatsFlag(flag.CommandLine)
	writeManifest := cliutil.AddManifestFlag(flag.CommandLine)
	flag.Parse()
	if err := applyShards(); err != nil {
		return err
	}
	if err := applyQueue(); err != nil {
		return err
	}
	if err := applyShardStats(); err != nil {
		return err
	}

	stop, err := prof.Start()
	if err != nil {
		return err
	}
	defer stop()

	var campaigns []ic.Campaign
	for _, path := range cliutil.SplitCSV(*campaignCSV) {
		c, err := ic.LoadCampaign(path)
		if err != nil {
			return err
		}
		campaigns = append(campaigns, c)
	}
	for _, spec := range cliutil.SplitCSV(*presetCSV) {
		c, err := ic.ParsePreset(spec)
		if err != nil {
			return err
		}
		campaigns = append(campaigns, c)
	}
	if len(campaigns) == 0 {
		// Demonstration set: one campaign per fault class.
		for _, spec := range []string{
			"clean", "blackhole:3", "grayhole:3:0.5", "drop:3:0.5",
			"corrupt:3:0.25", "spoof:3", "churn:3:30:10", "byzantine:3",
		} {
			c, err := ic.ParsePreset(spec)
			if err != nil {
				return err
			}
			campaigns = append(campaigns, c)
		}
	}

	levels, err := cliutil.ParseLevels(*levelsCSV)
	if err != nil {
		return err
	}

	base := ic.PaperBlackholeConfig()
	base.Nodes = *nodes
	base.Connections = *conns
	base.Seed = *seed
	base.SimTime = ic.Time(*simTime)

	names := make([]string, len(campaigns))
	for i, c := range campaigns {
		names[i] = c.Name
	}
	fmt.Fprintf(os.Stderr, "sweep: %d nodes, %v per run, %d runs/cell, campaigns %v\n",
		base.Nodes, base.SimTime, *runs, names)

	tables, err := ic.CampaignSweep(base, campaigns, levels, *runs, cliutil.Progress(*quiet))
	if err != nil {
		return err
	}
	rendered := tables.Throughput.StringWithCI() + "\n" +
		tables.Energy.StringWithCI() + "\n" +
		tables.Injected.String() + "\n" +
		tables.Suppressed.String() + "\n" +
		tables.Leaked.String() + "\n" +
		tables.VerifiesAvoided.String() + "\n"
	fmt.Print(rendered)
	return writeManifest(&experiment.GridRequest{
		Name: "faultsweep", Kind: experiment.GridCampaign,
		Blackhole: &base, Campaigns: campaigns, Levels: levels, Runs: *runs,
	}, rendered)
}

func main() {
	cliutil.Main("faultsweep", run)
}
