// Command ickeys is the trusted dealer of §2 as a command-line tool: it
// deals an (L+1)-threshold signing key among n players, produces partial
// signatures with chosen shares, combines them, and verifies the result —
// a hands-on demonstration of the threshold-signature substrate.
//
// Usage:
//
//	ickeys [-scheme rsa|sim] [-bits 1024] [-l 2] [-n 5] [-signers 1,2,3] [-msg text]
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"strconv"
	"strings"

	ic "innercircle"
	"innercircle/internal/cliutil"
)

func run() error {
	var (
		scheme  = flag.String("scheme", "rsa", "signature scheme: rsa (Shoup threshold RSA) or sim (keyed MAC)")
		bits    = flag.Int("bits", 1024, "RSA modulus size")
		level   = flag.Int("l", 2, "dependability level L (L+1 partials combine)")
		n       = flag.Int("n", 5, "number of players")
		signers = flag.String("signers", "", "comma-separated 1-based share indices (default: first L+1)")
		msg     = flag.String("msg", "agreed value v", "message to sign")
		refresh = flag.Bool("refresh", false, "demonstrate proactive share refresh after signing")
		prof    = cliutil.AddProfileFlags(flag.CommandLine)
	)
	applyShards := cliutil.AddShardsFlag(flag.CommandLine)
	flag.Parse()
	if err := applyShards(); err != nil {
		return err
	}

	stop, err := prof.Start()
	if err != nil {
		return err
	}
	defer stop()

	var dealer ic.Dealer
	switch *scheme {
	case "rsa":
		dealer = ic.NewRSADealer(*bits)
	case "sim":
		dealer = ic.NewSimDealer([]byte("ickeys-demo"), *bits/8)
	default:
		return fmt.Errorf("unknown scheme %q", *scheme)
	}

	fmt.Printf("dealing K_%d with threshold %d among %d players (%s)...\n", *level, *level, *n, *scheme)
	gk, shares, err := dealer.Deal(*level, *n)
	if err != nil {
		return err
	}
	fmt.Printf("group key: %d+1 partials required, %d-byte signatures\n", gk.Threshold(), gk.SigBytes())

	var idx []int
	if *signers == "" {
		for i := 1; i <= *level+1; i++ {
			idx = append(idx, i)
		}
	} else {
		for _, p := range strings.Split(*signers, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v < 1 || v > *n {
				return fmt.Errorf("bad signer index %q", p)
			}
			idx = append(idx, v)
		}
	}

	var partials []ic.Partial
	for _, i := range idx {
		p, err := shares[i-1].PartialSign([]byte(*msg))
		if err != nil {
			return err
		}
		partials = append(partials, p)
		fmt.Printf("partial from share %d: %s...\n", i, hex.EncodeToString(p.Data[:min(8, len(p.Data))]))
	}

	sig, err := gk.Combine([]byte(*msg), partials)
	if err != nil {
		fmt.Printf("combine failed (as expected with < %d partials): %v\n", gk.Threshold()+1, err)
		return nil
	}
	fmt.Printf("combined signature (%d bytes): %s...\n", len(sig.Data), hex.EncodeToString(sig.Data[:min(16, len(sig.Data))]))
	if err := gk.Verify([]byte(*msg), sig); err != nil {
		return fmt.Errorf("verification failed: %w", err)
	}
	fmt.Println("verification: OK — any recipient can now check that", gk.Threshold()+1, "players co-signed")

	if *refresh {
		refresher, ok := dealer.(interface {
			Refresh(ic.GroupKey, []ic.Signer) ([]ic.Signer, error)
		})
		if !ok {
			return fmt.Errorf("scheme %q does not support refresh", *scheme)
		}
		fmt.Println()
		fmt.Println("proactive refresh: re-randomizing every share...")
		fresh, err := refresher.Refresh(gk, shares)
		if err != nil {
			return err
		}
		if err := gk.Verify([]byte(*msg), sig); err != nil {
			return fmt.Errorf("pre-refresh signature invalidated: %w", err)
		}
		fmt.Println("the earlier combined signature still verifies (public key unchanged)")
		stale := partials[0]
		freshParts := []ic.Partial{stale}
		for i := 1; i <= *level; i++ {
			p, err := fresh[idx[i]-1].PartialSign([]byte(*msg))
			if err != nil {
				return err
			}
			freshParts = append(freshParts, p)
		}
		if _, err := gk.Combine([]byte(*msg), freshParts); err != nil {
			fmt.Println("a stale (pre-refresh) share no longer combines with fresh ones:")
			fmt.Println(" ", err)
		} else {
			return fmt.Errorf("cross-epoch combination unexpectedly succeeded")
		}
	}
	return nil
}

func main() {
	cliutil.Main("ickeys", run)
}
