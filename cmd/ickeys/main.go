// Command ickeys is the key-lifecycle substrate of §2 as a command-line
// tool: it establishes an (L+1)-threshold signing key among n players —
// through the trusted dealer or dealerless keygen (-dkg) — produces
// partial signatures with chosen shares, combines them, verifies the
// result, and optionally demonstrates the epoch transitions (proactive
// refresh, quorum reshare) that dynamic membership is built on.
//
// Usage:
//
//	ickeys [-scheme rsa|sim] [-bits 1024] [-l 2] [-n 5] [-signers 1,2,3] [-msg text]
//	       [-dkg] [-dkgfaults i:cheat,j:stubborn,k:silent]
//	       [-refresh] [-reshare k:n]
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"strconv"
	"strings"

	ic "innercircle"
	"innercircle/internal/cliutil"
)

// parseDKGFaults decodes "3:stubborn,5:silent" into the scripted-fault
// map DKG takes (1-based participant indices).
func parseDKGFaults(spec string, n int) (map[int]ic.DKGFault, error) {
	out := make(map[int]ic.DKGFault)
	for _, part := range cliutil.SplitCSV(spec) {
		idxStr, name, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("bad dkg fault %q (want index:behaviour)", part)
		}
		i, err := strconv.Atoi(strings.TrimSpace(idxStr))
		if err != nil || i < 1 || i > n {
			return nil, fmt.Errorf("bad dkg fault index %q", idxStr)
		}
		switch strings.TrimSpace(name) {
		case "cheat":
			out[i] = ic.DKGCheatThenReveal
		case "stubborn":
			out[i] = ic.DKGCheatStubborn
		case "silent":
			out[i] = ic.DKGSilent
		default:
			return nil, fmt.Errorf("unknown dkg behaviour %q (want cheat, stubborn or silent)", name)
		}
	}
	return out, nil
}

// parseKN decodes a "k:n" reshare target.
func parseKN(spec string) (k, n int, err error) {
	kStr, nStr, ok := strings.Cut(spec, ":")
	if !ok {
		return 0, 0, fmt.Errorf("bad reshare target %q (want k:n)", spec)
	}
	if k, err = strconv.Atoi(strings.TrimSpace(kStr)); err != nil || k < 1 {
		return 0, 0, fmt.Errorf("bad reshare threshold %q", kStr)
	}
	if n, err = strconv.Atoi(strings.TrimSpace(nStr)); err != nil || n < k+1 {
		return 0, 0, fmt.Errorf("bad reshare player count %q (need n >= k+1)", nStr)
	}
	return k, n, nil
}

func epochOf(gk ic.GroupKey) uint64 {
	if e, ok := gk.(ic.Epoched); ok {
		return e.Epoch()
	}
	return 0
}

func run() error {
	var (
		scheme    = flag.String("scheme", "rsa", "signature scheme: rsa (Shoup threshold RSA) or sim (keyed MAC)")
		bits      = flag.Int("bits", 1024, "RSA modulus size")
		level     = flag.Int("l", 2, "dependability level L (L+1 partials combine)")
		n         = flag.Int("n", 5, "number of players")
		signers   = flag.String("signers", "", "comma-separated 1-based share indices (default: first L+1 holding a share)")
		msg       = flag.String("msg", "agreed value v", "message to sign")
		dkg       = flag.Bool("dkg", false, "establish the key with dealerless keygen instead of the trusted dealer")
		dkgFaults = flag.String("dkgfaults", "", "scripted DKG misbehaviour, e.g. 3:stubborn,5:silent (with -dkg)")
		refresh   = flag.Bool("refresh", false, "demonstrate proactive share refresh after signing")
		reshareKN = flag.String("reshare", "", "demonstrate a quorum reshare to k:n after signing, e.g. 3:7")
		prof      = cliutil.AddProfileFlags(flag.CommandLine)
	)
	applyShards := cliutil.AddShardsFlag(flag.CommandLine)
	applyQueue := cliutil.AddQueueFlag(flag.CommandLine)
	flag.Parse()
	if err := applyShards(); err != nil {
		return err
	}
	if err := applyQueue(); err != nil {
		return err
	}

	stop, err := prof.Start()
	if err != nil {
		return err
	}
	defer stop()

	var dealer ic.Dealer
	switch *scheme {
	case "rsa":
		dealer = ic.NewRSADealer(*bits)
	case "sim":
		dealer = ic.NewSimDealer([]byte("ickeys-demo"), *bits/8)
	default:
		return fmt.Errorf("unknown scheme %q", *scheme)
	}

	var gk ic.GroupKey
	var shares []ic.Signer
	if *dkg {
		gen, ok := dealer.(ic.KeyGenerator)
		if !ok {
			return fmt.Errorf("scheme %q does not support dealerless keygen", *scheme)
		}
		faults, err := parseDKGFaults(*dkgFaults, *n)
		if err != nil {
			return err
		}
		fmt.Printf("dealerless keygen of K_%d with threshold %d among %d players (%s)...\n", *level, *level, *n, *scheme)
		res, err := gen.DKG(ic.DKGConfig{K: *level, N: *n, Faults: faults})
		if err != nil {
			return err
		}
		fmt.Printf("qualification: %d complaints exchanged\n", res.Complaints)
		for _, b := range res.Blamed {
			fmt.Printf("  player %d blamed with proof (opening contradicts commitment) and excluded\n", b)
		}
		for _, s := range res.Silent {
			fmt.Printf("  player %d never dealt — excluded without proof (crash-indistinguishable)\n", s)
		}
		gk, shares = res.Key, res.Signers
	} else {
		fmt.Printf("dealing K_%d with threshold %d among %d players (%s)...\n", *level, *level, *n, *scheme)
		gk, shares, err = dealer.Deal(*level, *n)
		if err != nil {
			return err
		}
	}
	fmt.Printf("group key: %d+1 partials required, %d-byte signatures\n", gk.Threshold(), gk.SigBytes())

	var idx []int
	if *signers == "" {
		for i := 1; i <= *n && len(idx) < *level+1; i++ {
			if shares[i-1] != nil {
				idx = append(idx, i)
			}
		}
	} else {
		for _, p := range strings.Split(*signers, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v < 1 || v > *n {
				return fmt.Errorf("bad signer index %q", p)
			}
			if shares[v-1] == nil {
				return fmt.Errorf("player %d holds no share (excluded during keygen)", v)
			}
			idx = append(idx, v)
		}
	}

	var partials []ic.Partial
	for _, i := range idx {
		p, err := shares[i-1].PartialSign([]byte(*msg))
		if err != nil {
			return err
		}
		partials = append(partials, p)
		fmt.Printf("partial from share %d: %s...\n", i, hex.EncodeToString(p.Data[:min(8, len(p.Data))]))
	}

	sig, err := gk.Combine([]byte(*msg), partials)
	if err != nil {
		fmt.Printf("combine failed (as expected with < %d partials): %v\n", gk.Threshold()+1, err)
		return nil
	}
	fmt.Printf("combined signature (%d bytes): %s...\n", len(sig.Data), hex.EncodeToString(sig.Data[:min(16, len(sig.Data))]))
	if err := gk.Verify([]byte(*msg), sig); err != nil {
		return fmt.Errorf("verification failed: %w", err)
	}
	fmt.Println("verification: OK — any recipient can now check that", gk.Threshold()+1, "players co-signed")

	if *refresh {
		refresher, ok := dealer.(ic.Refresher)
		if !ok {
			return fmt.Errorf("scheme %q does not support refresh", *scheme)
		}
		fmt.Println()
		fmt.Println("proactive refresh: re-randomizing every share...")
		fresh, err := refresher.Refresh(gk, shares)
		if err != nil {
			return err
		}
		if err := gk.Verify([]byte(*msg), sig); err != nil {
			return fmt.Errorf("pre-refresh signature invalidated: %w", err)
		}
		fmt.Println("the earlier combined signature still verifies (public key unchanged)")
		stale := partials[0]
		freshParts := []ic.Partial{stale}
		for i := 1; i <= *level; i++ {
			p, err := fresh[idx[i]-1].PartialSign([]byte(*msg))
			if err != nil {
				return err
			}
			freshParts = append(freshParts, p)
		}
		if _, err := gk.Combine([]byte(*msg), freshParts); err != nil {
			fmt.Println("a stale (pre-refresh) share no longer combines with fresh ones:")
			fmt.Println(" ", err)
		} else {
			return fmt.Errorf("cross-epoch combination unexpectedly succeeded")
		}
		shares = fresh
	}

	if *reshareKN != "" {
		newK, newN, err := parseKN(*reshareKN)
		if err != nil {
			return err
		}
		resharer, ok := dealer.(ic.Resharer)
		if !ok {
			return fmt.Errorf("scheme %q does not support reshare", *scheme)
		}
		fmt.Println()
		fmt.Printf("quorum reshare: moving the key to threshold %d among %d players...\n", newK, newN)
		oldEpoch := epochOf(gk)
		newShares, err := resharer.Reshare(gk, newK, newN)
		if err != nil {
			return err
		}
		fmt.Printf("key epoch %d -> %d; public key unchanged\n", oldEpoch, epochOf(gk))
		// Scheme-dependent fate of the pre-reshare signature: the RSA public
		// key survives the reshare so old traffic stays checkable; the sim
		// scheme's share keys ARE its verification state, so its old
		// signatures expire with the epoch.
		switch oldErr := gk.Verify([]byte(*msg), sig); *scheme {
		case "rsa":
			if oldErr != nil {
				return fmt.Errorf("pre-reshare signature invalidated: %w", oldErr)
			}
			fmt.Println("the earlier combined signature still verifies (old traffic stays checkable)")
		default:
			if oldErr == nil {
				return fmt.Errorf("sim signature unexpectedly survived the epoch bump")
			}
			fmt.Println("the earlier combined signature expired with the epoch (sim keys are the verification state)")
		}
		var fresh []ic.Partial
		for i := 0; i <= newK; i++ {
			p, err := newShares[i].PartialSign([]byte(*msg))
			if err != nil {
				return err
			}
			fresh = append(fresh, p)
		}
		sig2, err := gk.Combine([]byte(*msg), fresh)
		if err != nil {
			return fmt.Errorf("fresh quorum failed to sign after reshare: %w", err)
		}
		if err := gk.Verify([]byte(*msg), sig2); err != nil {
			return fmt.Errorf("post-reshare signature invalid: %w", err)
		}
		fmt.Printf("fresh %d+1 quorum signs under the same public key: OK\n", newK)
		mixed := append([]ic.Partial{partials[0]}, fresh[1:]...)
		if _, err := gk.Combine([]byte(*msg), mixed); err != nil {
			fmt.Println("a stale (pre-reshare) share does not combine with the new layout:")
			fmt.Println(" ", err)
		} else {
			return fmt.Errorf("cross-epoch combination unexpectedly succeeded")
		}
	}
	return nil
}

func main() {
	cliutil.Main("ickeys", run)
}
