// Command churnsweep sweeps membership churn over the Fig. 8 sensor
// network: inner-circle configurations at each dependability level run
// under increasing crash-and-rejoin rates, and the tables report what
// churn costs in detection quality and energy next to the lifecycle
// accounting (membership transitions, reshares executed, vote rounds
// aborted, final key epoch).
//
// The churn=0 column is exactly the seed sensor replica — the control
// against which the other columns are read. Same seed and axes produce
// byte-identical tables at any IC_WORKERS and IC_SHARDS setting.
//
// Usage:
//
//	churnsweep [-levels 2,3,5] [-churns 0,2,4,8] [-runs N] [-seed S]
//	           [-time T] [-leaves N] [-downtime D] [-policy event|interval|off]
//	           [-reshare-interval D] [-refresh-interval D] [-protect N]
//	           [-quick] [-quiet]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	ic "innercircle"
	"innercircle/internal/cliutil"
	"innercircle/internal/experiment"
)

// parseChurns parses the churn-rate axis; unlike dependability levels,
// 0 is a valid (and recommended) control column.
func parseChurns(s string) ([]int, error) {
	var out []int
	for _, part := range cliutil.SplitCSV(s) {
		v, err := strconv.Atoi(part)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad churn rate %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func run() error {
	var (
		runs            = flag.Int("runs", 5, "simulation runs per data point")
		seed            = flag.Int64("seed", 1, "base seed")
		levelsArg       = flag.String("levels", "2,3,5", "inner-circle dependability levels")
		churnsArg       = flag.String("churns", "0,2,4,8", "crash-and-rejoin counts per run (0 = churn-free control)")
		simTime         = flag.Float64("time", 0, "simulated seconds per run (0 keeps the Fig. 8 box)")
		leaves          = flag.Int("leaves", 0, "permanent departures per run")
		downtime        = flag.Float64("downtime", 0, "seconds a crashed node stays down (0 = default)")
		policy          = flag.String("policy", "", "reshare policy: event, interval or off (empty = event)")
		reshareInterval = flag.Float64("reshare-interval", 0, "seconds between reshares (policy interval)")
		refreshInterval = flag.Float64("refresh-interval", 0, "seconds between proactive share refreshes (0 = none)")
		protect         = flag.Int("protect", 0, "low node indices never churned (0 = default: the observer)")
		quick           = flag.Bool("quick", false, "reduced sweep for a fast preview")
		quiet           = flag.Bool("quiet", false, "suppress per-run progress")
		prof            = cliutil.AddProfileFlags(flag.CommandLine)
	)
	applyShards := cliutil.AddShardsFlag(flag.CommandLine)
	applyQueue := cliutil.AddQueueFlag(flag.CommandLine)
	applyShardStats := cliutil.AddShardStatsFlag(flag.CommandLine)
	writeManifest := cliutil.AddManifestFlag(flag.CommandLine)
	flag.Parse()
	if err := applyShards(); err != nil {
		return err
	}
	if err := applyQueue(); err != nil {
		return err
	}
	if err := applyShardStats(); err != nil {
		return err
	}

	stop, err := prof.Start()
	if err != nil {
		return err
	}
	defer stop()

	levels, err := cliutil.ParseLevels(*levelsArg)
	if err != nil {
		return err
	}
	churns, err := parseChurns(*churnsArg)
	if err != nil {
		return err
	}

	base := ic.PaperSensorConfig()
	base.Seed = *seed
	if *simTime > 0 {
		base.SimTime = ic.Time(*simTime)
	}
	// The template every non-zero churn column inherits (the rate itself
	// is the column axis).
	base.Churn = &ic.Churn{
		Leaves:          *leaves,
		Downtime:        ic.Duration(*downtime),
		Reshare:         *policy,
		ReshareInterval: ic.Duration(*reshareInterval),
		RefreshInterval: ic.Duration(*refreshInterval),
		Protect:         *protect,
	}
	if *quick {
		levels = []int{3}
		churns = []int{0, 2}
		*runs = 2
		base.SimTime = 60
		base.TargetStart = 20
		base.TargetPeriod = 40
		base.TargetDuration = 15
	}

	fmt.Fprintf(os.Stderr, "sweep: %d nodes, %v per run, %d runs/point, levels %v, churn rates %v\n",
		base.Nodes, base.SimTime, *runs, levels, churns)

	tables, err := ic.ChurnSweep(base, levels, churns, *runs, cliutil.Progress(*quiet))
	if err != nil {
		return err
	}
	rendered := tables.Miss.StringWithCI() + "\n" +
		tables.Energy.StringWithCI() + "\n" +
		tables.Events.String() + "\n" +
		tables.Reshares.String() + "\n" +
		tables.Aborted.String() + "\n" +
		tables.Epoch.String() + "\n"
	fmt.Print(rendered)
	return writeManifest(&experiment.GridRequest{
		Name: "churnsweep", Kind: experiment.GridChurn,
		Sensor: &base, Levels: levels, Churns: churns, Runs: *runs,
	}, rendered)
}

func main() {
	cliutil.Main("churnsweep", run)
}
