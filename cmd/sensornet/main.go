// Command sensornet regenerates Fig. 8 of the paper: miss/false alarm
// probabilities, energy consumption (with and without a target), detection
// latency, and localization error of a 100-node sensor network under the
// four sensor fault models, for the centralized baseline and the
// inner-circle solution at dependability levels L=2..7.
//
// Usage:
//
//	sensornet [-runs N] [-seed S] [-levels 2,3,4,5,6,7] [-weak] [-quick] [-cpuprofile out.pprof] [-memprofile out.pprof]
//
// -weak reruns the sweep with the weaker target signal (K·T = 10000) the
// paper uses to probe the miss-alarm limits of large inner circles.
package main

import (
	"flag"
	"fmt"
	"os"

	ic "innercircle"
	"innercircle/internal/cliutil"
	"innercircle/internal/experiment"
)

func run() error {
	var (
		runs      = flag.Int("runs", 5, "simulation runs per data point")
		seed      = flag.Int64("seed", 1, "base seed")
		levelsArg = flag.String("levels", "2,3,4,5,6,7", "inner-circle dependability levels")
		weak      = flag.Bool("weak", false, "use the weak target signal K·T = 10000")
		uniform   = flag.Bool("uniform", false, "uniform-random sensor placement instead of the jittered grid")
		fusionArg = flag.String("fusion", "cluster", "statistical fusion algorithm: cluster|mean|naive (ablation A8)")
		quick     = flag.Bool("quick", false, "reduced sweep for a fast preview")
		quiet     = flag.Bool("quiet", false, "suppress per-run progress")
		prof      = cliutil.AddProfileFlags(flag.CommandLine)
	)
	applyShards := cliutil.AddShardsFlag(flag.CommandLine)
	applyQueue := cliutil.AddQueueFlag(flag.CommandLine)
	applyShardStats := cliutil.AddShardStatsFlag(flag.CommandLine)
	writeManifest := cliutil.AddManifestFlag(flag.CommandLine)
	flag.Parse()
	if err := applyShards(); err != nil {
		return err
	}
	if err := applyQueue(); err != nil {
		return err
	}
	if err := applyShardStats(); err != nil {
		return err
	}

	stop, err := prof.Start()
	if err != nil {
		return err
	}
	defer stop()

	levels, err := cliutil.ParseLevels(*levelsArg)
	if err != nil {
		return err
	}
	base := ic.PaperSensorConfig()
	base.Seed = *seed
	if *weak {
		base.Model.KT = 10000
		base.UniformPlacement = true // thin patches drive the miss-alarm knee
	}
	if *uniform {
		base.UniformPlacement = true
	}
	switch *fusionArg {
	case "cluster":
		base.Fusion = ic.FusionCluster
	case "mean":
		base.Fusion = ic.FusionMean
	case "naive":
		base.Fusion = ic.FusionNaive
	default:
		return fmt.Errorf("unknown fusion algorithm %q", *fusionArg)
	}
	faults := ic.AllFaultKinds()
	if *quick {
		levels = []int{3, 5}
		faults = []ic.FaultKind{ic.FaultNone, ic.FaultInterference}
		*runs = 2
	}

	fmt.Fprintf(os.Stderr, "sweep: %d nodes, %v per run, %d runs/point, levels %v, K·T=%g\n",
		base.Nodes, base.SimTime, *runs, levels, base.Model.KT)

	tables, err := ic.SensorSweep(base, levels, faults, *runs, cliutil.Progress(*quiet))
	if err != nil {
		return err
	}
	var rendered string
	for _, key := range experiment.SensorTableKeys {
		rendered += tables[key].StringWithCI() + "\n"
	}
	fmt.Print(rendered)
	return writeManifest(&experiment.GridRequest{
		Name: "sensornet", Kind: experiment.GridSensor,
		Sensor: &base, Levels: levels, Faults: faults, Runs: *runs,
	}, rendered)
}

func main() {
	cliutil.Main("sensornet", run)
}
