// Command blackhole regenerates Fig. 7 of the paper: network throughput
// (a) and per-node energy consumption (b) of an AODV network under
// black-hole attack, for the plain protocol and the inner-circle defense
// at dependability levels L=1 and L=2, across 0..10 malicious nodes.
//
// Usage:
//
//	blackhole [-runs N] [-seed S] [-time T] [-max-malicious M] [-quick] [-cpuprofile out.pprof] [-memprofile out.pprof]
//
// The paper averages 50 runs per point; -runs trades completeness for
// wall-clock time (each full-scale run simulates 300 s of a 50-node
// network and takes about a second).
package main

import (
	"flag"
	"fmt"
	"os"

	ic "innercircle"
	"innercircle/internal/cliutil"
	"innercircle/internal/experiment"
)

func run() error {
	var (
		runs    = flag.Int("runs", 5, "simulation runs per data point")
		seed    = flag.Int64("seed", 1, "base seed")
		simTime = flag.Float64("time", 300, "simulated seconds per run")
		maxMal  = flag.Int("max-malicious", 10, "largest malicious-node count")
		step    = flag.Int("step", 2, "malicious-node count step")
		gray    = flag.Float64("gray", 0, "gray-hole probability (0 = classic black holes)")
		quick   = flag.Bool("quick", false, "reduced sweep for a fast preview")
		quiet   = flag.Bool("quiet", false, "suppress per-run progress")
		prof    = cliutil.AddProfileFlags(flag.CommandLine)
	)
	applyShards := cliutil.AddShardsFlag(flag.CommandLine)
	applyQueue := cliutil.AddQueueFlag(flag.CommandLine)
	writeManifest := cliutil.AddManifestFlag(flag.CommandLine)
	flag.Parse()
	if err := applyShards(); err != nil {
		return err
	}
	if err := applyQueue(); err != nil {
		return err
	}

	stop, err := prof.Start()
	if err != nil {
		return err
	}
	defer stop()

	base := ic.PaperBlackholeConfig()
	base.Seed = *seed
	base.SimTime = ic.Time(*simTime)
	base.GrayProb = *gray

	var counts []int
	for m := 0; m <= *maxMal; m += *step {
		counts = append(counts, m)
	}
	levels := []int{1, 2}
	if *quick {
		base.SimTime = 60
		counts = []int{0, 2, 6, 10}
		levels = []int{1}
		*runs = 2
	}

	fmt.Fprintf(os.Stderr, "sweep: %d nodes, %v per run, %d runs/point, malicious counts %v\n",
		base.Nodes, base.SimTime, *runs, counts)

	throughput, energy, err := ic.BlackholeSweep(base, counts, levels, *runs, cliutil.Progress(*quiet))
	if err != nil {
		return err
	}
	rendered := throughput.StringWithCI() + "\n" + energy.StringWithCI() + "\n"
	fmt.Print(rendered)
	return writeManifest(&experiment.GridRequest{
		Name: "blackhole", Kind: experiment.GridBlackhole,
		Blackhole: &base, Malicious: counts, Levels: levels, Runs: *runs,
	}, rendered)
}

func main() {
	cliutil.Main("blackhole", run)
}
