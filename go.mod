module innercircle

go 1.22
