// Command twohop demonstrates the paper's §3 extension: widening inner
// circles to two hops. A sparse line topology gives the proposing node a
// single physical neighbour, so a dependability level of 2 is unreachable
// with one-hop circles — and reachable once first-ring members relay the
// round to the second ring.
package main

import (
	"fmt"
	"os"

	ic "innercircle"
)

func run() error {
	// A line: 0 — 1 — 2 — 3, 200 m spacing (250 m radio range), so node 0
	// hears only node 1.
	positions := []ic.Point{{X: 0}, {X: 200}, {X: 400}, {X: 600}}

	for _, twoHop := range []bool{false, true} {
		agreed := 0
		var failReason string
		stsCfg := ic.DefaultSTS()
		stsCfg.Handshake = false
		cfg := ic.NetworkConfig{
			N:      len(positions),
			Seed:   11,
			Radio:  ic.Default80211Radio(),
			MAC:    ic.DefaultMAC(),
			Energy: ic.NS2Energy(),
			Mobility: func(i int, _ *ic.RNG) ic.MobilityModel {
				return ic.Static(positions[i])
			},
			IC:  true,
			STS: stsCfg,
			Vote: ic.VoteConfig{
				Mode: ic.Deterministic, L: 2,
				RoundTimeout: 0.3, Retries: 2,
				TwoHop: twoHop,
			},
			Callbacks: func(n *ic.Node) ic.VoteCallbacks {
				return ic.VoteCallbacks{
					Check:    func(ic.NodeID, []byte) bool { return true },
					OnAgreed: func(ic.AgreedMsg) { agreed++ },
					OnRoundFailed: func(_ []byte, reason string) {
						failReason = reason
					},
				}
			},
		}
		net, err := ic.BuildNetwork(cfg)
		if err != nil {
			return err
		}
		net.StartSTS()
		if err := net.Run(4); err != nil {
			return err
		}
		fmt.Printf("two-hop circles: %v\n", twoHop)
		fmt.Printf("  node 0 one-hop neighbours: %v\n", net.Nodes[0].STS.Neighbors())
		if err := net.Nodes[0].Vote.Propose([]byte("needs two approvals")); err != nil {
			return err
		}
		if err := net.Run(8); err != nil {
			return err
		}
		if agreed > 0 {
			fmt.Printf("  L=2 round: agreed (%d deliveries — node 2 voted through relayer 1)\n\n", agreed)
		} else {
			fmt.Printf("  L=2 round: failed (%s)\n\n", failReason)
		}
	}
	fmt.Println("With one-hop circles the proposer's single neighbour cannot satisfy L=2;")
	fmt.Println("the two-hop extension recruits the second ring, trading extra local relay")
	fmt.Println("traffic for a larger approval pool — the §3 rebalancing of the")
	fmt.Println("dependability/performance trade-off.")
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "twohop:", err)
		os.Exit(1)
	}
}
