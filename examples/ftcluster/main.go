// Command ftcluster reproduces the Fig. 5 walkthrough of the paper's
// Fault-Tolerant Cluster algorithm: four sensor observations of a common
// value, one stuck at a high reading, fused three ways — naive centroid,
// fault-tolerant mean, and the FT-cluster algorithm — to show why the
// cluster algorithm is both robust and accurate.
package main

import (
	"fmt"
	"os"

	ic "innercircle"
)

func run() error {
	// Fig. 5: observations of Θ ≈ (1, 1); p4 comes from a humidity-damaged
	// sensor stuck at a high value.
	theta := ic.Vec{1, 1}
	points := []ic.Vec{
		{0.4, 1.6}, // p1
		{0.3, 0.2}, // p2
		{1.9, 0.6}, // p3
		{4.0, 4.5}, // p4 — faulty
	}
	fmt.Println("Observations of Θ = (1.0, 1.0):")
	for i, p := range points {
		note := ""
		if i == 3 {
			note = "   <- faulty sensor (stuck at high)"
		}
		fmt.Printf("  p%d = (%4.1f, %4.1f)%s\n", i+1, p[0], p[1], note)
	}

	naive := average(points)
	fmt.Printf("\nnaive centroid:        (%.2f, %.2f)  error %.2f\n",
		naive[0], naive[1], naive.Dist(theta))

	ftm, err := ic.FTMean(points, 1)
	if err != nil {
		return err
	}
	fmt.Printf("fault-tolerant mean:   (%.2f, %.2f)  error %.2f   (always discards 2f values)\n",
		ftm[0], ftm[1], ftm.Dist(theta))

	res, err := ic.FTCluster(points, 2.0)
	if err != nil {
		return err
	}
	fmt.Printf("FT-cluster (eta=2.0):  (%.2f, %.2f)  error %.2f   (removed: p%d)\n",
		res.Estimate[0], res.Estimate[1], res.Estimate.Dist(theta), res.Removed[0]+1)

	// The §4.3 worst-case analysis: with F = N/3 colluding observations,
	// the adversary can shift the estimate by at most δC.
	fmt.Printf("\nworst-case bound for F=N/3, δC=1: E* = %.2f (the estimate stays in the\n"+
		"range of the correct observations)\n", ic.WorstCaseError(1, 3, 1))

	// With no faults the cluster algorithm keeps everything — its
	// advantage over the trimming mean.
	clean := []ic.Vec{{0.9, 1.0}, {1.1, 1.0}, {1.0, 0.9}, {1.0, 1.1}}
	cres, err := ic.FTCluster(clean, 2.0)
	if err != nil {
		return err
	}
	fmt.Printf("\nno-fault input: FT-cluster keeps %d/4 observations (FT-mean would always\n"+
		"discard 2), estimate (%.2f, %.2f)\n", len(cres.Kept), cres.Estimate[0], cres.Estimate[1])
	return nil
}

func average(points []ic.Vec) ic.Vec {
	out := make(ic.Vec, len(points[0]))
	for _, p := range points {
		for i := range out {
			out[i] += p[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(points))
	}
	return out
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ftcluster:", err)
		os.Exit(1)
	}
}
