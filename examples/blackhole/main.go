// Command blackhole demonstrates the §5.1 case study: a black-hole
// attacker forges AODV route replies to swallow a network's traffic, and
// the inner-circle defense of Fig. 6 neutralizes it. The demo runs the
// same 50-node mobile scenario three times — clean, attacked, and attacked
// with inner-circle protection — and prints the throughput collapse and
// recovery.
package main

import (
	"flag"
	"fmt"
	"os"

	ic "innercircle"
)

func run() error {
	var (
		seed     = flag.Int64("seed", 1, "simulation seed")
		simTime  = flag.Float64("time", 120, "simulated seconds per scenario")
		attacker = flag.Int("attackers", 2, "number of black-hole nodes")
	)
	flag.Parse()

	base := ic.PaperBlackholeConfig()
	base.SimTime = ic.Time(*simTime)
	base.Seed = *seed

	scenarios := []struct {
		name string
		mal  int
		icOn bool
	}{
		{"clean network, plain AODV", 0, false},
		{fmt.Sprintf("%d black holes, plain AODV", *attacker), *attacker, false},
		{fmt.Sprintf("%d black holes, inner-circle AODV (L=1)", *attacker), *attacker, true},
	}

	fmt.Printf("Black-hole attack on AODV — %d nodes, %v of virtual time, random waypoint %v m/s\n\n",
		base.Nodes, base.SimTime, base.Speed)
	for _, sc := range scenarios {
		cfg := base
		cfg.Malicious = sc.mal
		cfg.IC = sc.icOn
		cfg.L = 1
		res, err := ic.RunBlackhole(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", sc.name, err)
		}
		fmt.Printf("%-45s throughput %5.1f%%  (%d/%d packets), %.2f J/node\n",
			sc.name, res.Throughput, res.Received, res.Sent, res.EnergyPerNode)
	}

	fmt.Println("\nThe attacker answers every route request with a forged, fresher route")
	fmt.Println("(a high destination sequence number) and silently drops the traffic it")
	fmt.Println("attracts. With the inner circle, a route reply only propagates after the")
	fmt.Println("replier's neighbours have co-signed it, and a forged reply never gets the")
	fmt.Println("required approvals — so only genuine routes are established.")
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "blackhole:", err)
		os.Exit(1)
	}
}
