// Command quickstart walks through the inner-circle framework on a small
// static network: five nodes discover each other with the Secure Topology
// Service, one proposes a value to its inner circle, the neighbours
// validate and co-sign it, and every node ends up holding a threshold-
// signed agreed message it can verify independently.
package main

import (
	"fmt"
	"os"

	ic "innercircle"
)

func run() error {
	// A cross of five nodes, everyone within the 250 m radio range of the
	// centre node 0.
	positions := []ic.Point{
		{X: 0, Y: 0},
		{X: 200, Y: 0},
		{X: -200, Y: 0},
		{X: 0, Y: 200},
		{X: 0, Y: -200},
	}

	agreed := make(map[ic.NodeID][]ic.AgreedMsg)
	stsCfg := ic.DefaultSTS()
	stsCfg.Handshake = false // keyed-MAC beacons keep the demo snappy

	cfg := ic.NetworkConfig{
		N:      len(positions),
		Seed:   7,
		Radio:  ic.Default80211Radio(),
		MAC:    ic.DefaultMAC(),
		Energy: ic.NS2Energy(),
		Mobility: func(i int, _ *ic.RNG) ic.MobilityModel {
			return ic.Static(positions[i])
		},
		IC:  true,
		STS: stsCfg,
		// Dependability level L=2: two neighbours must co-sign (three
		// shares of K_2 in total, counting the proposer's own).
		Vote: ic.VoteConfig{Mode: ic.Deterministic, L: 2, RoundTimeout: 0.2, Retries: 2},
		Callbacks: func(n *ic.Node) ic.VoteCallbacks {
			id := n.ID
			return ic.VoteCallbacks{
				// The application-aware check: here, values must carry the
				// "temp=" prefix and parse to a plausible reading.
				Check: func(center ic.NodeID, value []byte) bool {
					ok := len(value) > 5 && string(value[:5]) == "temp="
					fmt.Printf("  node %d checks %q from node %d: %v\n", id, value, center, ok)
					return ok
				},
				OnAgreed: func(m ic.AgreedMsg) {
					agreed[id] = append(agreed[id], m)
				},
			}
		},
	}

	net, err := ic.BuildNetwork(cfg)
	if err != nil {
		return err
	}
	net.StartSTS()

	fmt.Println("== phase 1: secure topology discovery (2 s of beacons)")
	if err := net.Run(3); err != nil {
		return err
	}
	for _, nd := range net.Nodes {
		fmt.Printf("  node %d neighbours: %v\n", nd.ID, nd.STS.Neighbors())
	}

	fmt.Println("== phase 2: node 0 proposes a valid value to its inner circle")
	if err := net.Nodes[0].Vote.Propose([]byte("temp=21.5C")); err != nil {
		return err
	}
	if err := net.Run(5); err != nil {
		return err
	}

	fmt.Println("== phase 3: every node holds (and can verify) the agreed message")
	for _, nd := range net.Nodes {
		for _, m := range agreed[nd.ID] {
			err := nd.Vote.VerifyAgreed(m)
			fmt.Printf("  node %d: value=%q L=%d signature-valid=%v\n",
				nd.ID, m.Value, m.L, err == nil)
		}
	}

	fmt.Println("== phase 4: an invalid value never achieves agreement")
	if err := net.Nodes[1].Vote.Propose([]byte("garbage")); err != nil {
		return err
	}
	if err := net.Run(8); err != nil {
		return err
	}
	total := 0
	for _, ms := range agreed {
		total += len(ms)
	}
	fmt.Printf("  agreed messages in the network: %d (the garbage proposal is not among them)\n", total)
	fmt.Printf("== done; per-node energy so far: %.3f J\n", net.TotalEnergy()/float64(len(net.Nodes)))
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}
