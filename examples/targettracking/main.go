// Command targettracking demonstrates the §5.2 case study: a wireless
// sensor network detecting and localizing targets while some sensors are
// faulty. It contrasts the centralized solution (every detecting sensor
// floods a raw notification to the base station) with the inner-circle
// solution (each detecting circle votes statistically, fuses its readings
// with the fault-tolerant cluster algorithm, trilaterates the target, and
// forwards one threshold-signed agreed message).
package main

import (
	"flag"
	"fmt"
	"os"

	ic "innercircle"
)

var faultNames = map[string]ic.FaultKind{
	"none":         ic.FaultNone,
	"stuck":        ic.FaultStuckAtZero,
	"calibration":  ic.FaultCalibration,
	"interference": ic.FaultInterference,
	"position":     ic.FaultPosition,
}

func run() error {
	var (
		seed  = flag.Int64("seed", 3, "simulation seed")
		level = flag.Int("L", 4, "dependability level for the inner-circle run")
		fault = flag.String("fault", "interference", "sensor fault model: none|stuck|calibration|interference|position")
	)
	flag.Parse()

	kind, ok := faultNames[*fault]
	if !ok {
		return fmt.Errorf("unknown fault model %q", *fault)
	}

	base := ic.PaperSensorConfig()
	base.Seed = *seed
	base.Fault = kind

	fmt.Printf("Target detection/localization — %d sensors on %gx%g m², %d faulty (%s)\n\n",
		base.Nodes-1, base.Region, base.Region, base.Faulty, *fault)

	for _, sc := range []struct {
		name string
		icOn bool
	}{
		{"centralized (raw notifications)", false},
		{fmt.Sprintf("inner circle (statistical voting, L=%d)", *level), true},
	} {
		cfg := base
		cfg.IC = sc.icOn
		cfg.L = *level
		res, err := ic.RunSensor(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", sc.name, err)
		}
		fmt.Printf("%s:\n", sc.name)
		fmt.Printf("  targets detected:        %d/%d\n", res.Targets-res.Missed, res.Targets)
		fmt.Printf("  detection latency:       %.2f s\n", res.DetectionLatency)
		fmt.Printf("  localization error:      %.1f m\n", res.LocalizationErr)
		fmt.Printf("  false alarms at base:    %.2f %% per sensor-epoch\n", res.FalseAlarmProb)
		fmt.Printf("  notifications accepted:  %d\n", res.Notifications)
		fmt.Printf("  radio energy (per node): %.3f J beyond idle\n\n", res.TrafficEnergy)
	}

	fmt.Println("The inner circle filters faulty readings at the source: a spurious")
	fmt.Println("detection finds no co-signing neighbours, duplicate reports collapse into")
	fmt.Println("one agreed message per circle, and the fault-tolerant cluster algorithm")
	fmt.Println("excludes corrupted observations before the position is trilaterated.")
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "targettracking:", err)
		os.Exit(1)
	}
}
