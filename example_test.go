package innercircle_test

import (
	"fmt"

	ic "innercircle"
)

// ExampleFTCluster reproduces the paper's Fig. 5 scenario: three
// consistent observations and one stuck-at-high outlier.
func ExampleFTCluster() {
	points := []ic.Vec{
		{0.4, 1.6},
		{0.3, 0.2},
		{1.9, 0.6},
		{4.0, 4.5}, // faulty sensor
	}
	res, err := ic.FTCluster(points, 2.0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("removed observation %d\n", res.Removed[0])
	fmt.Printf("estimate (%.2f, %.2f)\n", res.Estimate[0], res.Estimate[1])
	// Output:
	// removed observation 3
	// estimate (0.87, 0.80)
}

// ExampleFTMean shows the trimming-mean baseline: f lowest and f highest
// observations are always discarded.
func ExampleFTMean() {
	est, err := ic.FTMean([]ic.Vec{{1}, {2}, {3}, {4}, {100}}, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%.0f\n", est[0])
	// Output:
	// 3
}

// ExampleDealRing deals per-level threshold keys and assembles a
// signature proving that L+1 = 3 nodes co-signed.
func ExampleDealRing() {
	ring, shares, err := ic.DealRing(ic.NewSimDealer([]byte("doc"), 128), 5, 10)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	const level = 2
	msg := []byte("target at (60, 40)")
	var partials []ic.Partial
	for node := 0; node <= level; node++ {
		p, err := shares[node][level].PartialSign(msg)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		partials = append(partials, p)
	}
	sig, err := ring[level].Combine(msg, partials)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("verified:", ring[level].Verify(msg, sig) == nil)
	// Output:
	// verified: true
}

// ExampleLevelFor sizes the dependability level for a failure budget per
// the §4.2 formula.
func ExampleLevelFor() {
	// A 10-node inner circle tolerating 2 Byzantine nodes and 1 crash.
	l, err := ic.LevelFor(10, 2, 1, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("L =", l)
	byzL, err := ic.ByzantineLevel(9)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("Byzantine special case for N=9: L =", byzL)
	// Output:
	// L = 6
	// Byzantine special case for N=9: L = 5
}

// ExampleTrilaterate recovers a target position from three anchors.
func ExampleTrilaterate() {
	target := ic.Point{X: 30, Y: 40}
	a1 := ic.Point{X: 0, Y: 0}
	a2 := ic.Point{X: 100, Y: 0}
	a3 := ic.Point{X: 0, Y: 100}
	got, err := ic.Trilaterate(a1, a2, a3, target.Dist(a1), target.Dist(a2), target.Dist(a3))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("(%.0f, %.0f)\n", got.X, got.Y)
	// Output:
	// (30, 40)
}

// ExampleWorstCaseError evaluates the §4.3 bound for the paper's worked
// case F = N/3.
func ExampleWorstCaseError() {
	fmt.Printf("E* = %.1f (δC = 1)\n", ic.WorstCaseError(3, 9, 1))
	// Output:
	// E* = 1.0 (δC = 1)
}
